//! Parallel evaluation of hardware candidates (§III, Algorithm 1's
//! `par_for` loops).
//!
//! For every candidate instance kind we compute the least achievable
//! `T_max`: on GPUs by probing candidate `y` values of Eq. (1) (the paper
//! obtains the best `y` "with minimal overhead (< 3 ms) through
//! multi-threading"); on CPU nodes by an M/D/1-style sojourn estimate over
//! the framework's batched CPU mode, optimizing the batch size.
//!
//! The evaluation is embarrassingly parallel across candidates, so it runs
//! on the shared bounded pool ([`crate::pool`]) — results merge in input
//! order, mirroring the paper's implementation.
//!
//! A [`PlanCache`] memoizes per-`(model, kind, load)` plans across monitor
//! rounds: steady traffic re-evaluates an unchanged load every interval,
//! and the cheapest-first selection re-probes the same candidates. Cached
//! evaluation quantizes the predicted rate to [`RATE_QUANTUM`] buckets
//! (backlog stays exact), so a cache hit returns bit-for-bit the plan the
//! uncached computation would produce for the same quantized load.

use crate::pool;
use crate::tmax::TmaxInputs;
use paldia_hw::InstanceKind;
use paldia_workloads::{MlModel, Profile};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

/// Per-model load description for an evaluation round.
#[derive(Clone, Copy, Debug)]
pub struct ModelLoad {
    /// The model.
    pub model: MlModel,
    /// Requests outstanding *now* (backlog).
    pub pending: u64,
    /// Predicted arrival rate, requests/s.
    pub rate_rps: f64,
}

impl ModelLoad {
    /// `N_M` for Eq. (1): the backlog plus the requests that will overlap
    /// with it inside one SLO window (requests arriving within `SLO` of
    /// each other contend for the same device time).
    pub fn n_requests(&self, slo_ms: f64) -> u64 {
        self.pending + (self.rate_rps * slo_ms / 1_000.0).ceil() as u64
    }
}

/// Evaluation result for one candidate kind.
#[derive(Clone, Debug)]
pub struct HwEvaluation {
    /// The candidate.
    pub kind: InstanceKind,
    /// Worst per-model least-achievable `T_max`, ms.
    pub t_max_ms: f64,
    /// Per-model plan: (model, best y, batch size to use, spatial cap).
    pub plans: Vec<ModelPlan>,
}

/// Per-model execution plan on a candidate kind.
#[derive(Clone, Copy, Debug)]
pub struct ModelPlan {
    /// The model.
    pub model: MlModel,
    /// Chosen `y` (requests to queue); 0 when not applicable.
    pub best_y: u64,
    /// Batch size to run with.
    pub batch_size: u32,
    /// Concurrent-batch cap realizing the `(N − y)/BS` spatial share.
    pub spatial_cap: u32,
    /// This model's least `T_max` on the kind, ms.
    pub t_max_ms: f64,
}

/// Evaluate one GPU candidate for one model. `contention` inflates the solo
/// time by the host-side slowdown co-located CPU workloads impose (the
/// host-aware extension; 0.0 in the paper's shipped model).
fn eval_gpu_model(kind: InstanceKind, load: &ModelLoad, slo_ms: f64, contention: f64) -> ModelPlan {
    let bs = Profile::default_batch(load.model);
    let solo = Profile::solo_ms(load.model, kind, bs) * (1.0 + contention.max(0.0));
    let share = Profile::effective_share(load.model, kind);
    let inputs = TmaxInputs {
        solo_ms: solo,
        batch_size: bs,
        fbr: share,
        n_requests: load.n_requests(slo_ms),
    };
    let (y, t) = inputs.best_y();
    let n = inputs.n_requests;
    let spatial_requests = n.saturating_sub(y);
    let mut spatial_cap = (spatial_requests as f64 / bs as f64).ceil().max(1.0) as u32;
    // Occupancy management: never let the concurrent set's mutual
    // interference alone blow the SLO — co-locate at most the batches that
    // still finish in time and queue the rest ("appropriately manages GPU
    // occupancy so as to prudently trade off job interference and queueing
    // delays", §VI-B). Without this bound a deep backlog degenerates into
    // INFless-style consolidation.
    if share > 0.0 && solo > 0.0 {
        let mut k_slo = 1u32;
        while k_slo < 512 {
            let k = (k_slo + 1) as f64;
            let slow = (k * share).max(1.0) * paldia_hw::mps::client_overhead_factor(k);
            if slow * solo <= slo_ms {
                k_slo += 1;
            } else {
                break;
            }
        }
        spatial_cap = spatial_cap.min(k_slo);
    }
    ModelPlan {
        model: load.model,
        best_y: y,
        batch_size: bs,
        spatial_cap,
        t_max_ms: if n == 0 { solo } else { t },
    }
}

/// Evaluate one CPU candidate for one model: pick the batch size minimizing
/// an M/D/1 sojourn estimate `solo(bs) · (1 + ρ/(2(1−ρ)))` plus backlog
/// drain time. Infinite when the node cannot keep up (ρ ≥ 0.9).
fn eval_cpu_model(kind: InstanceKind, load: &ModelLoad, slo_ms: f64, contention: f64) -> ModelPlan {
    let stretch = 1.0 + contention.max(0.0);
    let max_bs = Profile::max_batch_within(load.model, kind, 0.8 * slo_ms / stretch).unwrap_or(0);
    let mut best = ModelPlan {
        model: load.model,
        best_y: 0,
        batch_size: 1,
        spatial_cap: 1,
        t_max_ms: f64::INFINITY,
    };
    let mut bs = 1u32;
    while bs <= max_bs {
        let solo = Profile::solo_ms(load.model, kind, bs) * stretch;
        let capacity_rps = bs as f64 / (solo / 1_000.0);
        let rho = load.rate_rps / capacity_rps;
        if rho < 0.9 {
            // Waiting is the worse of the steady-state M/D/1 wait and the
            // time to drain the live backlog (not their sum — the backlog
            // *is* the queue the steady-state term models).
            let wait_steady = solo * rho / (2.0 * (1.0 - rho));
            let drain = load.pending as f64 / capacity_rps * 1_000.0;
            let t = solo + wait_steady.max(drain);
            if t < best.t_max_ms {
                best.batch_size = bs;
                best.t_max_ms = t;
            }
        }
        bs *= 2;
    }
    best
}

/// Evaluate a single candidate kind against every model's load.
pub fn evaluate_kind(kind: InstanceKind, loads: &[ModelLoad], slo_ms: f64) -> HwEvaluation {
    evaluate_kind_with(kind, loads, slo_ms, 0.0)
}

/// Host-aware evaluation (the paper's stated future work, implemented):
/// `contention` is the fraction of this node's host capacity stolen by
/// co-resident CPU-bound serverless workloads; every latency estimate is
/// inflated accordingly, so selection routes around contended nodes.
pub fn evaluate_kind_with(
    kind: InstanceKind,
    loads: &[ModelLoad],
    slo_ms: f64,
    contention: f64,
) -> HwEvaluation {
    let plans: Vec<ModelPlan> = loads
        .iter()
        .map(|l| {
            if kind.is_gpu() {
                eval_gpu_model(kind, l, slo_ms, contention)
            } else {
                eval_cpu_model(kind, l, slo_ms, contention)
            }
        })
        .collect();
    let t_max_ms = plans.iter().map(|p| p.t_max_ms).fold(0.0f64, f64::max);
    HwEvaluation {
        kind,
        t_max_ms,
        plans,
    }
}

/// Evaluate every candidate in parallel (Algorithm 1's outer `par_for`).
/// Results come back in the input order, so the caller's cost-ascending
/// sort is preserved.
pub fn evaluate_pool(
    kinds: &[InstanceKind],
    loads: &[ModelLoad],
    slo_ms: f64,
) -> Vec<HwEvaluation> {
    evaluate_pool_with(kinds, loads, slo_ms, &|_| 0.0)
}

/// Parallel pool evaluation with a per-kind host-contention estimate (the
/// host-aware extension).
pub fn evaluate_pool_with(
    kinds: &[InstanceKind],
    loads: &[ModelLoad],
    slo_ms: f64,
    contention_of: &(dyn Fn(InstanceKind) -> f64 + Sync),
) -> Vec<HwEvaluation> {
    pool::run_indexed(kinds.len(), |i| {
        let kind = kinds[i];
        evaluate_kind_with(kind, loads, slo_ms, contention_of(kind))
    })
}

/// Rate quantum for plan-cache keys, rps. Cached evaluation rounds the
/// predicted rate to this grid before planning, so nearby rates share one
/// plan; 0.05 rps moves `N_M` by at most 0.01 requests per 200 ms SLO
/// window — far below the model's own prediction error.
pub const RATE_QUANTUM: f64 = 0.05;

fn quantize_rate(rate_rps: f64) -> u64 {
    (rate_rps.max(0.0) / RATE_QUANTUM).round() as u64
}

/// Everything a per-model plan depends on, quantized where continuous.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
struct PlanKey {
    model: MlModel,
    kind: InstanceKind,
    pending: u64,
    rate_q: u64,
    contention_q: u64,
    slo_us: u64,
}

impl PlanKey {
    fn new(kind: InstanceKind, load: &ModelLoad, slo_ms: f64, contention: f64) -> Self {
        PlanKey {
            model: load.model,
            kind,
            pending: load.pending,
            rate_q: quantize_rate(load.rate_rps),
            contention_q: (contention.max(0.0) * 1_000.0).round() as u64,
            slo_us: (slo_ms * 1_000.0).round() as u64,
        }
    }

    /// The load the cached plan was (or will be) computed from.
    fn quantized_load(&self) -> ModelLoad {
        ModelLoad {
            model: self.model,
            pending: self.pending,
            rate_rps: self.rate_q as f64 * RATE_QUANTUM,
        }
    }
}

/// Process-wide hit/miss tallies across every cache instance, surfaced by
/// `repro --timings`.
static CACHE_HITS: AtomicU64 = AtomicU64::new(0);
static CACHE_MISSES: AtomicU64 = AtomicU64::new(0);

/// `(hits, misses)` accumulated process-wide since start (or last reset).
pub fn cache_counters() -> (u64, u64) {
    (
        CACHE_HITS.load(Ordering::Relaxed),
        CACHE_MISSES.load(Ordering::Relaxed),
    )
}

/// Zero the process-wide cache counters.
pub fn reset_cache_counters() {
    CACHE_HITS.store(0, Ordering::Relaxed);
    CACHE_MISSES.store(0, Ordering::Relaxed);
}

/// Memoized per-model plans, owned by one scheduler instance (one cache per
/// simulated cluster keeps parallel experiment cells fully independent).
#[derive(Default)]
pub struct PlanCache {
    map: BTreeMap<PlanKey, ModelPlan>,
    hits: u64,
    misses: u64,
}

impl PlanCache {
    /// An empty cache with zeroed hit/miss counters.
    pub fn new() -> Self {
        PlanCache::default()
    }

    /// Hits recorded by this instance.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded by this instance.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    fn plan_for(
        &mut self,
        kind: InstanceKind,
        load: &ModelLoad,
        slo_ms: f64,
        contention: f64,
    ) -> ModelPlan {
        let key = PlanKey::new(kind, load, slo_ms, contention);
        if let Some(&plan) = self.map.get(&key) {
            self.hits += 1;
            CACHE_HITS.fetch_add(1, Ordering::Relaxed);
            return plan;
        }
        self.misses += 1;
        CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
        let ql = key.quantized_load();
        let plan = if kind.is_gpu() {
            eval_gpu_model(kind, &ql, slo_ms, contention)
        } else {
            eval_cpu_model(kind, &ql, slo_ms, contention)
        };
        self.map.insert(key, plan);
        plan
    }
}

/// Cached single-kind evaluation: per-model plans come from `cache`,
/// computed on miss from the quantized load.
pub fn evaluate_kind_cached(
    kind: InstanceKind,
    loads: &[ModelLoad],
    slo_ms: f64,
    contention: f64,
    cache: &mut PlanCache,
) -> HwEvaluation {
    let plans: Vec<ModelPlan> = loads
        .iter()
        .map(|l| cache.plan_for(kind, l, slo_ms, contention))
        .collect();
    let t_max_ms = plans.iter().map(|p| p.t_max_ms).fold(0.0f64, f64::max);
    HwEvaluation {
        kind,
        t_max_ms,
        plans,
    }
}

/// Cached pool evaluation. Cache lookups happen up front on the calling
/// thread; only kinds with at least one miss are dispatched to the bounded
/// pool, and their freshly computed plans are folded back into the cache in
/// input order — so the cache contents never depend on worker scheduling.
pub fn evaluate_pool_cached(
    kinds: &[InstanceKind],
    loads: &[ModelLoad],
    slo_ms: f64,
    contention_of: &(dyn Fn(InstanceKind) -> f64 + Sync),
    cache: &mut PlanCache,
) -> Vec<HwEvaluation> {
    // Upfront pass: resolve every (kind, model) either to a cached plan or
    // to a miss recorded for the parallel phase.
    let mut resolved: Vec<Vec<Option<ModelPlan>>> = Vec::with_capacity(kinds.len());
    let mut missing: Vec<(usize, usize)> = Vec::new(); // (kind idx, load idx)
    for (ki, &kind) in kinds.iter().enumerate() {
        let contention = contention_of(kind);
        let mut row = Vec::with_capacity(loads.len());
        for (li, load) in loads.iter().enumerate() {
            let key = PlanKey::new(kind, load, slo_ms, contention);
            match cache.map.get(&key) {
                Some(&plan) => {
                    cache.hits += 1;
                    CACHE_HITS.fetch_add(1, Ordering::Relaxed);
                    row.push(Some(plan));
                }
                None => {
                    cache.misses += 1;
                    CACHE_MISSES.fetch_add(1, Ordering::Relaxed);
                    missing.push((ki, li));
                    row.push(None);
                }
            }
        }
        resolved.push(row);
    }

    // Parallel phase over the misses only.
    let computed: Vec<ModelPlan> = pool::run_indexed(missing.len(), |mi| {
        let (ki, li) = missing[mi];
        let kind = kinds[ki];
        let contention = contention_of(kind);
        let key = PlanKey::new(kind, &loads[li], slo_ms, contention);
        let ql = key.quantized_load();
        if kind.is_gpu() {
            eval_gpu_model(kind, &ql, slo_ms, contention)
        } else {
            eval_cpu_model(kind, &ql, slo_ms, contention)
        }
    });
    for (&(ki, li), &plan) in missing.iter().zip(computed.iter()) {
        let kind = kinds[ki];
        let key = PlanKey::new(kind, &loads[li], slo_ms, contention_of(kind));
        cache.map.insert(key, plan);
        resolved[ki][li] = Some(plan);
    }

    resolved
        .into_iter()
        .zip(kinds.iter())
        .map(|(row, &kind)| {
            let plans: Vec<ModelPlan> = row
                .into_iter()
                .map(|p| p.expect("invariant: every (kind, model) cell was resolved above"))
                .collect();
            let t_max_ms = plans.iter().map(|p| p.t_max_ms).fold(0.0f64, f64::max);
            HwEvaluation {
                kind,
                t_max_ms,
                plans,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn load(model: MlModel, pending: u64, rate: f64) -> ModelLoad {
        ModelLoad {
            model,
            pending,
            rate_rps: rate,
        }
    }

    #[test]
    fn n_requests_combines_backlog_and_slo_window() {
        let l = load(MlModel::ResNet50, 100, 250.0);
        // 100 + 250 × 0.2 = 150.
        assert_eq!(l.n_requests(200.0), 150);
    }

    #[test]
    fn v100_beats_m60_under_heavy_backlog() {
        let loads = [load(MlModel::GoogleNet, 400, 225.0)];
        let m60 = evaluate_kind(InstanceKind::G3s_xlarge, &loads, 200.0);
        let v100 = evaluate_kind(InstanceKind::P3_2xlarge, &loads, 200.0);
        assert!(v100.t_max_ms < m60.t_max_ms);
        assert!(
            m60.t_max_ms > 200.0,
            "heavy backlog should blow the SLO on the M60: {}",
            m60.t_max_ms
        );
        assert!(
            v100.t_max_ms < 200.0,
            "the V100 should absorb it: {}",
            v100.t_max_ms
        );
    }

    #[test]
    fn light_load_feasible_on_cheap_gpu() {
        let loads = [load(MlModel::GoogleNet, 0, 50.0)];
        let m60 = evaluate_kind(InstanceKind::G3s_xlarge, &loads, 200.0);
        assert!(m60.t_max_ms <= 200.0, "t {}", m60.t_max_ms);
        assert!(m60.plans[0].spatial_cap >= 1);
    }

    #[test]
    fn cpu_feasible_at_trickle_infeasible_at_speed() {
        let slow = evaluate_kind(
            InstanceKind::C6i_4xlarge,
            &[load(MlModel::GoogleNet, 0, 15.0)],
            200.0,
        );
        assert!(
            slow.t_max_ms < 200.0,
            "15 rps on c6i.4xlarge: {}",
            slow.t_max_ms
        );
        let fast = evaluate_kind(
            InstanceKind::C6i_4xlarge,
            &[load(MlModel::GoogleNet, 0, 225.0)],
            200.0,
        );
        assert!(
            fast.t_max_ms.is_infinite(),
            "225 rps must overwhelm the CPU"
        );
    }

    #[test]
    fn weakest_cpu_cannot_serve_heavy_models() {
        let e = evaluate_kind(
            InstanceKind::M4_xlarge,
            &[load(MlModel::Dpn92, 0, 5.0)],
            200.0,
        );
        assert!(e.t_max_ms.is_infinite());
    }

    #[test]
    fn backlog_disqualifies_cpu() {
        // Even a feasible rate becomes infeasible with a big backlog to
        // drain — the reason surges escalate to GPUs.
        let e = evaluate_kind(
            InstanceKind::C6i_4xlarge,
            &[load(MlModel::MobileNet, 2_000, 20.0)],
            200.0,
        );
        assert!(e.t_max_ms > 200.0);
    }

    #[test]
    fn multi_model_takes_worst_case() {
        let loads = [
            load(MlModel::SeNet18, 0, 100.0),
            load(MlModel::DenseNet121, 800, 160.0),
        ];
        let e = evaluate_kind(InstanceKind::G3s_xlarge, &loads, 200.0);
        let worst = e.plans.iter().map(|p| p.t_max_ms).fold(0.0, f64::max);
        assert_eq!(e.t_max_ms, worst);
        assert_eq!(e.plans.len(), 2);
    }

    #[test]
    fn parallel_pool_matches_serial() {
        let loads = [load(MlModel::ResNet50, 500, 225.0)];
        let kinds = [
            InstanceKind::M4_xlarge,
            InstanceKind::C6i_2xlarge,
            InstanceKind::C6i_4xlarge,
            InstanceKind::G3s_xlarge,
            InstanceKind::P2_xlarge,
            InstanceKind::P3_2xlarge,
        ];
        let par = evaluate_pool(&kinds, &loads, 200.0);
        for (i, &k) in kinds.iter().enumerate() {
            let ser = evaluate_kind(k, &loads, 200.0);
            assert_eq!(par[i].kind, k);
            assert_eq!(par[i].t_max_ms.to_bits(), ser.t_max_ms.to_bits());
        }
    }

    #[test]
    fn cache_hit_returns_exact_uncached_plan() {
        // Acceptance criterion: a cache hit must return bit-for-bit the
        // ModelPlan an uncached evaluation of the same (quantized) load
        // produces.
        let loads = [
            load(MlModel::ResNet50, 37, 123.4),
            load(MlModel::SeNet18, 0, 61.7),
        ];
        let kinds = [InstanceKind::G3s_xlarge, InstanceKind::C6i_4xlarge];
        let mut cache = PlanCache::new();
        for &kind in &kinds {
            let first = evaluate_kind_cached(kind, &loads, 200.0, 0.0, &mut cache);
            let hits_before = cache.hits();
            let second = evaluate_kind_cached(kind, &loads, 200.0, 0.0, &mut cache);
            assert_eq!(
                cache.hits(),
                hits_before + loads.len() as u64,
                "second evaluation must be all hits"
            );
            // The uncached reference: evaluate the quantized loads directly.
            let qloads: Vec<ModelLoad> = loads
                .iter()
                .map(|l| ModelLoad {
                    rate_rps: quantize_rate(l.rate_rps) as f64 * RATE_QUANTUM,
                    ..*l
                })
                .collect();
            let uncached = evaluate_kind_with(kind, &qloads, 200.0, 0.0);
            for ((a, b), c) in first
                .plans
                .iter()
                .zip(second.plans.iter())
                .zip(uncached.plans.iter())
            {
                assert_eq!(a.model, c.model);
                assert_eq!(a.best_y, c.best_y);
                assert_eq!(a.batch_size, c.batch_size);
                assert_eq!(a.spatial_cap, c.spatial_cap);
                assert_eq!(a.t_max_ms.to_bits(), c.t_max_ms.to_bits());
                assert_eq!(b.t_max_ms.to_bits(), c.t_max_ms.to_bits());
            }
        }
    }

    #[test]
    fn cached_pool_matches_cached_kind_and_counts() {
        let loads = [load(MlModel::GoogleNet, 12, 88.8)];
        let kinds = [
            InstanceKind::M4_xlarge,
            InstanceKind::C6i_4xlarge,
            InstanceKind::G3s_xlarge,
            InstanceKind::P3_2xlarge,
        ];
        let mut cache = PlanCache::new();
        let cold = evaluate_pool_cached(&kinds, &loads, 200.0, &|_| 0.0, &mut cache);
        assert_eq!(cache.misses(), kinds.len() as u64);
        assert_eq!(cache.hits(), 0);
        let warm = evaluate_pool_cached(&kinds, &loads, 200.0, &|_| 0.0, &mut cache);
        assert_eq!(cache.hits(), kinds.len() as u64);
        for (a, b) in cold.iter().zip(warm.iter()) {
            assert_eq!(a.kind, b.kind);
            assert_eq!(a.t_max_ms.to_bits(), b.t_max_ms.to_bits());
        }
        // A different backlog is a different key, not a stale hit.
        let other = [load(MlModel::GoogleNet, 13, 88.8)];
        let _ = evaluate_pool_cached(&kinds, &other, 200.0, &|_| 0.0, &mut cache);
        assert_eq!(cache.misses(), 2 * kinds.len() as u64);
    }

    #[test]
    fn spatial_cap_reflects_best_y_bounded_by_slo() {
        let loads = [load(MlModel::GoogleNet, 640, 0.0)];
        let e = evaluate_kind(InstanceKind::P3_2xlarge, &loads, 200.0);
        let p = &e.plans[0];
        // On the V100 the effective share is small: everything goes spatial
        // (y = 0) — but the concurrent set is still bounded to the number
        // of batches whose mutual interference (share + MPS client
        // overhead) fits the SLO: 7 × 0.3 × 1.24 × 68 ms ≈ 177 ≤ 200 while
        // 8 batches would take ~209 ms.
        assert_eq!(p.best_y, 0);
        assert_eq!(p.spatial_cap, 7);
    }

    #[test]
    fn occupancy_bound_prevents_consolidation() {
        // A huge backlog must not open the floodgates: the spatial cap
        // stays at the SLO-fitting set regardless of backlog size.
        let small = evaluate_kind(
            InstanceKind::P3_2xlarge,
            &[load(MlModel::GoogleNet, 1_000, 0.0)],
            200.0,
        );
        let huge = evaluate_kind(
            InstanceKind::P3_2xlarge,
            &[load(MlModel::GoogleNet, 100_000, 0.0)],
            200.0,
        );
        assert_eq!(small.plans[0].spatial_cap, huge.plans[0].spatial_cap);
    }
}
