//! Job Distribution (§IV-D): turning per-model plans (`best_y`) into the
//! sharing directives the cluster applies.
//!
//! The Job Distributor "uses the best y value calculated already by the
//! Hardware Selection module … to determine the number of requests that
//! should perform spatial and temporal GPU sharing" and "automatically
//! adjusts the request batch size to enable this". In the substrate that
//! means: per-model spatial concurrency caps (`ceil((N − y)/BS)` batches
//! run via MPS; the rest queue, i.e. time-share) and per-model batch sizes.

use crate::ysearch::ModelPlan;
use paldia_cluster::{Decision, ModelDecision};
use paldia_hw::InstanceKind;

/// Build the cluster [`Decision`] from the chosen hardware and the plans
/// evaluated for the *currently serving* hardware.
pub fn plans_to_decision(hw: InstanceKind, plans: &[ModelPlan]) -> Decision {
    Decision {
        hw,
        total_cap: None,
        per_model: plans
            .iter()
            .map(|p| {
                (
                    p.model,
                    ModelDecision {
                        batch_size: p.batch_size.max(1),
                        spatial_cap: p.spatial_cap.max(1),
                    },
                )
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paldia_workloads::MlModel;

    #[test]
    fn plans_map_to_per_model_directives() {
        let plans = vec![
            ModelPlan {
                model: MlModel::ResNet50,
                best_y: 128,
                batch_size: 64,
                spatial_cap: 3,
                t_max_ms: 150.0,
            },
            ModelPlan {
                model: MlModel::Bert,
                best_y: 0,
                batch_size: 8,
                spatial_cap: 1,
                t_max_ms: 90.0,
            },
        ];
        let d = plans_to_decision(InstanceKind::G3s_xlarge, &plans);
        assert_eq!(d.hw, InstanceKind::G3s_xlarge);
        assert_eq!(d.total_cap, None);
        assert_eq!(d.per_model.len(), 2);
        let (m, md) = d.per_model[0];
        assert_eq!(m, MlModel::ResNet50);
        assert_eq!(md.batch_size, 64);
        assert_eq!(md.spatial_cap, 3);
    }

    #[test]
    fn zero_caps_clamped_to_one() {
        let plans = vec![ModelPlan {
            model: MlModel::MobileNet,
            best_y: 0,
            batch_size: 0,
            spatial_cap: 0,
            t_max_ms: 10.0,
        }];
        let d = plans_to_decision(InstanceKind::C6i_4xlarge, &plans);
        let (_, md) = d.per_model[0];
        assert_eq!(md.batch_size, 1);
        assert_eq!(md.spatial_cap, 1);
    }
}
