//! Equation (1): the interference/queueing overhead model.
//!
//! For a model `M` with `N` outstanding requests, batch size `BS`, isolated
//! batch latency `Solo`, and fractional bandwidth requirement `FBR`, queue
//! `y` requests (time sharing) and run the remaining `N − y` concurrently
//! via MPS. The worst-case completion time is
//!
//! ```text
//! T_max(y) = Solo · y/BS                      (queued, serial execution)
//!          + Solo · max(1, ((N − y)/BS) · FBR) (concurrent, interference)
//! ```
//!
//! The paper's constraints: `y < N`, and `((N − y)/BS) · FBR > 1` for the
//! interference term to be in the regime Prophet's model covers. Below that
//! regime the concurrent set does not saturate bandwidth and executes at
//! solo speed — the `max(1, ·)` extension, which is exactly what the
//! simulator's device model does.

/// Inputs to Eq. (1) for one model on one device.
///
/// ```
/// use paldia_core::TmaxInputs;
///
/// // 4 batches outstanding, each batch 64 requests taking 100 ms alone
/// // and claiming half the device when co-located.
/// let eq1 = TmaxInputs { solo_ms: 100.0, batch_size: 64, fbr: 0.5, n_requests: 256 };
/// // All spatial: 4 × 0.5 = 2× interference → 200 ms.
/// assert_eq!(eq1.t_max(0), 200.0);
/// // Queue half: 2 serial batches (200 ms) + 2 co-located at solo speed.
/// assert_eq!(eq1.t_max(128), 300.0);
/// let (best_y, t) = eq1.best_y();
/// assert_eq!((best_y, t), (0, 200.0));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TmaxInputs {
    /// Isolated batch execution latency on the device, ms (`Solo_M`).
    pub solo_ms: f64,
    /// Batch size (`BS_M`).
    pub batch_size: u32,
    /// Fractional bandwidth requirement of one full batch (`FBR_M`).
    pub fbr: f64,
    /// Outstanding requests (`N_M`).
    pub n_requests: u64,
}

impl TmaxInputs {
    /// Eq. (1): worst-case completion time (ms) when `y` requests are
    /// queued and `N − y` run concurrently. `y` is clamped to `[0, N]`.
    pub fn t_max(&self, y: u64) -> f64 {
        let bs = self.batch_size.max(1) as f64;
        let y = y.min(self.n_requests) as f64;
        let n = self.n_requests as f64;
        let queued = self.solo_ms * y / bs;
        let spatial_batches = (n - y) / bs;
        let spatial = if spatial_batches <= 0.0 {
            0.0
        } else {
            self.solo_ms * (spatial_batches * self.fbr).max(1.0)
        };
        queued + spatial
    }

    /// The paper's validity constraints on a candidate `y`:
    /// (i) `N > y`, (ii) `((N − y)/BS) · FBR > 1`.
    pub fn is_valid_y(&self, y: u64) -> bool {
        if y >= self.n_requests {
            return false;
        }
        let bs = self.batch_size.max(1) as f64;
        ((self.n_requests - y) as f64 / bs) * self.fbr > 1.0
    }

    /// The paper's "optimal range": all `y` satisfying both constraints,
    /// i.e. `0 ≤ y < N − BS/FBR`. `None` when the range is empty (too few
    /// requests to co-locate enough batches — the interference regime is
    /// never entered).
    pub fn optimal_range(&self) -> Option<std::ops::Range<u64>> {
        if self.fbr <= 0.0 || self.n_requests == 0 {
            return None;
        }
        let bs = self.batch_size.max(1) as f64;
        // y < N − BS/FBR (strict): largest integer y is ceil(N − BS/FBR) − 1.
        let bound = self.n_requests as f64 - bs / self.fbr;
        if bound <= 0.0 {
            return None;
        }
        let hi = bound.ceil() as u64; // exclusive upper bound
        Some(0..hi.min(self.n_requests))
    }

    /// Candidate `y` values to probe: batch-granular steps across `[0, N]`
    /// (queueing a fraction of a batch changes nothing — batches are the
    /// scheduling unit), always including the endpoints.
    pub fn candidate_ys(&self) -> Vec<u64> {
        let bs = self.batch_size.max(1) as u64;
        let n = self.n_requests;
        let mut ys: Vec<u64> = (0..=n).step_by(bs as usize).collect();
        if ys.last() != Some(&n) {
            ys.push(n);
        }
        ys
    }

    /// Exhaustively minimize `T_max` over batch-granular `y` (preferring,
    /// per the paper, values in the optimal range — spatial sharing must
    /// stay meaningfully loaded — but falling back to the `max(1,·)`
    /// extension when the range is empty). Returns `(best_y, T_max(best_y))`.
    /// Deterministic: ties break toward smaller `y` (more spatial sharing).
    pub fn best_y(&self) -> (u64, f64) {
        let mut best = (0u64, f64::INFINITY);
        for y in self.candidate_ys() {
            let t = self.t_max(y);
            if t < best.1 - 1e-9 {
                best = (y, t);
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inputs(solo: f64, bs: u32, fbr: f64, n: u64) -> TmaxInputs {
        TmaxInputs {
            solo_ms: solo,
            batch_size: bs,
            fbr,
            n_requests: n,
        }
    }

    #[test]
    fn hand_computed_example() {
        // Solo 100 ms, BS 64, FBR 0.5, N 256 (4 batches).
        let i = inputs(100.0, 64, 0.5, 256);
        // y = 0: all 4 batches spatial → 4·0.5 = 2× → 200 ms.
        assert!((i.t_max(0) - 200.0).abs() < 1e-9);
        // y = 128: 2 queued batches (200 ms) + 2 spatial at max(1,1)=1 → 100.
        assert!((i.t_max(128) - 300.0).abs() < 1e-9);
        // y = 64: 1 queued (100) + 3 spatial ×1.5 → 150. Total 250.
        assert!((i.t_max(64) - 250.0).abs() < 1e-9);
        // With FBR < 1, all-spatial minimizes T_max.
        assert_eq!(i.best_y(), (0, 200.0));
    }

    #[test]
    fn high_fbr_prefers_queueing() {
        // FBR 1.0 (a cheap GPU saturated by one batch): spatial sharing k
        // batches costs k·solo — same as queueing, so T_max is flat; but at
        // FBR > 1 queueing strictly wins.
        let i = inputs(100.0, 8, 1.0, 32);
        let (_, t) = i.best_y();
        assert!((t - 400.0).abs() < 1e-9, "t {t}");
    }

    #[test]
    fn constraints_match_paper() {
        let i = inputs(100.0, 64, 0.5, 256);
        // (N − y)/BS · FBR > 1 ⇔ (256 − y)/64 > 2 ⇔ y < 128.
        assert!(i.is_valid_y(0));
        assert!(i.is_valid_y(127));
        assert!(!i.is_valid_y(128));
        assert!(!i.is_valid_y(256));
        let r = i.optimal_range().unwrap();
        assert_eq!(r, 0..128);
    }

    #[test]
    fn optimal_range_empty_for_light_load() {
        // One batch's worth of requests never enters the interference
        // regime on any FBR < 1 device.
        let i = inputs(100.0, 64, 0.5, 64);
        assert!(i.optimal_range().is_none());
        // ...but t_max still works via the max(1,·) extension.
        assert!((i.t_max(0) - 100.0).abs() < 1e-9);
    }

    #[test]
    fn optimal_range_empty_for_zero_fbr_or_no_requests() {
        assert!(inputs(100.0, 64, 0.0, 1_000).optimal_range().is_none());
        assert!(inputs(100.0, 64, 0.5, 0).optimal_range().is_none());
    }

    #[test]
    fn t_max_monotone_decreasing_then_flat_in_spatial_regime() {
        // With FBR < 1 the derivative of T_max wrt y is (1 − FBR)/BS · Solo
        // > 0 while saturated, so y = 0 is optimal; once unsaturated the
        // spatial term pins at Solo and queueing grows linearly.
        let i = inputs(100.0, 32, 0.8, 320);
        let ts: Vec<f64> = i.candidate_ys().iter().map(|&y| i.t_max(y)).collect();
        let min = ts.iter().copied().fold(f64::INFINITY, f64::min);
        assert!((i.t_max(0) - min).abs() < 1e-9);
    }

    #[test]
    fn candidate_ys_are_batch_granular_with_endpoints() {
        let i = inputs(100.0, 64, 0.5, 200);
        let ys = i.candidate_ys();
        assert_eq!(ys, vec![0, 64, 128, 192, 200]);
    }

    #[test]
    fn clamps_y_beyond_n() {
        let i = inputs(100.0, 64, 0.5, 100);
        assert_eq!(i.t_max(1_000), i.t_max(100));
    }

    #[test]
    fn zero_requests_zero_time() {
        let i = inputs(100.0, 64, 0.5, 0);
        assert_eq!(i.t_max(0), 0.0);
        assert_eq!(i.best_y(), (0, 0.0));
    }

    #[test]
    fn queued_fraction_approximation() {
        // §III: queued execution time is approximated as the proportionate
        // fraction of the batch execution time: y/BS · Solo.
        let i = inputs(120.0, 64, 2.0, 64);
        // All queued but y must stay < N for validity; y = N means
        // everything timeshares: t = 120·(64/64) + 0 = 120.
        assert!((i.t_max(64) - 120.0).abs() < 1e-9);
        // Half queued: 60 + max(1, 0.5·2)·120 = 60 + 120 = 180.
        assert!((i.t_max(32) - 180.0).abs() < 1e-9);
    }
}
