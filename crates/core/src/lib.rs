//! # paldia-core
//!
//! The paper's primary contribution: the Paldia scheduling framework.
//!
//! * [`tmax`] — Equation (1): the queueing/interference overhead model and
//!   its optimal range over `y` (requests to queue vs. run via MPS).
//! * [`ysearch`] — parallel evaluation of hardware candidates: Eq. (1)
//!   y-probing on GPUs, M/D/1 sojourn estimation for the batched CPU mode.
//! * [`hwselect`] — `choose_best_HW` (cheapest-that-fits-the-SLO-slack with
//!   a within-50 ms-of-best distress fallback) and the `wait_ctr`
//!   reconfiguration hysteresis of Algorithm 1.
//! * [`jobdist`] — Job Distribution: plans → per-model spatial caps and
//!   batch sizes.
//! * [`framework`] — [`PaldiaScheduler`]: the pieces wired into a cluster
//!   `Scheduler`, including the clairvoyant Oracle variant of §VI-B.
//! * [`pool`] — the bounded worker pool behind both y-search and the
//!   experiment runner (`--jobs N` / `PALDIA_JOBS` override).

pub mod framework;
pub mod hwselect;
pub mod jobdist;
/// The bounded worker pool (moved to `paldia-sim` so the cluster's
/// sharded fleet coordinator can use it; re-exported here for callers).
pub use paldia_sim::pool;
pub mod tmax;
pub mod ysearch;

pub use framework::{PaldiaConfig, PaldiaScheduler};
pub use hwselect::{choose_best_hw, Hysteresis, SelectionConfig};
pub use tmax::TmaxInputs;
pub use ysearch::{evaluate_kind, evaluate_pool, HwEvaluation, ModelLoad, ModelPlan, PlanCache};
