//! Boundary-analyzer corpus: runs the full analysis over
//! `crates/lint/fixtures/boundary/` (a mini workspace with seeded b1/b2/
//! reach violations and manifest defects) and pins the EXACT diagnostic
//! set, including the golden call-chain narratives.
//!
//! The corpus encodes, by crate:
//! - `enginecore` (deterministic-core): direct dep on shell, transitive dep
//!   on tooling via `relay`, a dev-dep on tooling (exempt negative), four
//!   fenced `pub use` leaks (rename, group leaf, glob, cross-crate chain)
//!   plus two sanctioned re-exports, and a `run_simulation*` seed whose two
//!   chains end at wall-clock reads — one in-crate, one crossing classes.
//! - `relay` (deterministic-core): direct dep on tooling, the chain source
//!   re-export, a `PaldiaScheduler` method seed reaching `thread::spawn`,
//!   and a `reach`-hatched `env::var` (reviewed-exemption negative).
//! - `shellbin` (shell): may read the clock itself — only flagged as the
//!   crossing endpoint of a deterministic-core chain.
//! - `toolkit` (tooling) / `unlisted` (absent from the manifest) / `ghost`
//!   (manifest entry with no crate): manifest-coverage cases.

use std::path::Path;

fn boundary_report() -> paldia_lint::Report {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/boundary");
    paldia_lint::analyze(&root).expect("boundary corpus is readable")
}

#[test]
fn corpus_produces_exactly_the_seeded_boundary_violations() {
    let got: Vec<(String, usize, &'static str)> = boundary_report()
        .diagnostics
        .into_iter()
        .map(|d| (d.path, d.line, d.rule))
        .collect();
    let expected: Vec<(String, usize, &'static str)> = vec![
        // Manifest coverage: a crate on disk with no entry, and an entry
        // with no crate.
        ("classification.toml".into(), 1, "b1"),
        ("classification.toml".into(), 10, "b1"),
        // b1: transitive dc → tooling via relay (flagged at the first-hop
        // dep line), then the direct dc → shell edge.
        ("crates/enginecore/Cargo.toml".into(), 7, "b1"),
        ("crates/enginecore/Cargo.toml".into(), 8, "b1"),
        // reach: in-crate chain to a use-laundered Instant::now.
        ("crates/enginecore/src/helper.rs".into(), 11, "reach"),
        // b2: rename, group leaf, glob, cross-crate chain.
        ("crates/enginecore/src/lib.rs".into(), 6, "b2"),
        ("crates/enginecore/src/lib.rs".into(), 7, "b2"),
        ("crates/enginecore/src/lib.rs".into(), 8, "b2"),
        ("crates/enginecore/src/lib.rs".into(), 9, "b2"),
        // b1: direct dc → tooling edge in relay.
        ("crates/relay/Cargo.toml".into(), 7, "b1"),
        // b2: the chain source itself is also a leak in relay.
        ("crates/relay/src/lib.rs".into(), 4, "b2"),
        // reach: PaldiaScheduler method seed to thread::spawn.
        ("crates/relay/src/lib.rs".into(), 16, "reach"),
        // reach: class-crossing chain into the shell crate.
        ("crates/shellbin/src/lib.rs".into(), 5, "reach"),
    ];
    assert_eq!(got, expected);
}

#[test]
fn call_chain_narratives_are_golden() {
    let report = boundary_report();
    let narratives: Vec<&str> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "reach")
        .map(|d| d.message.as_str())
        .collect();
    assert_eq!(
        narratives,
        vec![
            "call chain `enginecore::engine::run_simulation_boundary` \u{2192} \
             `enginecore::helper::phase` \u{2192} `enginecore::helper::now_ms` reaches \
             fenced `std::time::Instant::now`",
            "call chain `relay::PaldiaScheduler::monitor_tick` \u{2192} `relay::spin` \
             reaches fenced `std::thread::spawn`",
            "call chain `enginecore::engine::run_simulation_boundary` \u{2192} \
             `shellbin::wall_ms` reaches fenced `std::time::Instant::now`, crossing \
             deterministic-core\u{2192}shell at `shellbin::wall_ms`",
        ]
    );
}

#[test]
fn b2_messages_name_the_leak_and_the_chain() {
    let report = boundary_report();
    let msg = |path: &str, line: usize| -> String {
        report
            .diagnostics
            .iter()
            .find(|d| d.path == path && d.line == line && d.rule == "b2")
            .unwrap_or_else(|| panic!("no b2 diagnostic at {path}:{line}"))
            .message
            .clone()
    };
    assert_eq!(
        msg("crates/enginecore/src/lib.rs", 6),
        "`pub use std::time::Instant as Clock` re-exports fenced `std::time::Instant` \
         from deterministic-core crate `enginecore`"
    );
    assert_eq!(
        msg("crates/enginecore/src/lib.rs", 9),
        "`pub use relay::Stamp` re-exports fenced `std::time::SystemTime` from \
         deterministic-core crate `enginecore` (via `relay`)"
    );
    assert!(msg("crates/enginecore/src/lib.rs", 8).contains("re-exports all of fenced `std::time`"));
}

#[test]
fn b1_messages_name_classes_and_transitive_chains() {
    let report = boundary_report();
    let b1: Vec<&str> = report
        .diagnostics
        .iter()
        .filter(|d| d.rule == "b1" && d.path.contains("Cargo.toml"))
        .map(|d| d.message.as_str())
        .collect();
    assert_eq!(b1.len(), 3);
    assert!(
        b1[0].contains("transitively depends on `toolkit` (tooling) via `enginecore` \u{2192} `relay` \u{2192} `toolkit`"),
        "{}",
        b1[0]
    );
    assert!(
        b1[1].contains("depends on `shellbin` (shell)")
            && b1[1].contains("may depend only on deterministic-core"),
        "{}",
        b1[1]
    );
}

#[test]
fn dev_dependencies_and_hatched_sinks_are_exempt() {
    let report = boundary_report();
    // enginecore dev-depends on toolkit: no b1 diagnostic may cite that
    // edge (dev-deps never link into shipped binaries).
    assert!(
        !report.diagnostics.iter().any(|d| d.message.contains("dev")
            || (d.path.ends_with("enginecore/Cargo.toml") && d.line > 8)),
        "dev-dependency edges must be exempt from b1"
    );
    // relay::sanctioned_jobs carries a `reach` hatch on its env::var line:
    // no reach diagnostic, and no stale-allow for the hatch that fired.
    assert!(
        !report
            .diagnostics
            .iter()
            .any(|d| d.path.ends_with("relay/src/lib.rs") && d.line == 22),
        "the reviewed `reach` hatch suppresses the env::var sink"
    );
    assert!(
        !report.diagnostics.iter().any(|d| d.rule == "stale-allow"),
        "every hatch in the boundary corpus pulls its weight"
    );
}

#[test]
fn report_summarizes_classification() {
    let report = boundary_report();
    let class = |dir: &str| -> &str {
        report
            .crates
            .iter()
            .find(|(d, _)| d == dir)
            .map(|(_, c)| c.as_str())
            .unwrap_or_else(|| panic!("crate {dir} missing from report"))
    };
    assert_eq!(class("enginecore"), "deterministic-core");
    assert_eq!(class("shellbin"), "shell");
    assert_eq!(class("toolkit"), "tooling");
    assert_eq!(class("unlisted"), "unclassified");
    assert_eq!(report.crates.len(), 5);
}
