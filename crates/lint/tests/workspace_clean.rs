//! The workspace itself must be violation-free under the shipped allowlist.
//! This is the same check `scripts/ci.sh` runs via the binary; keeping it as
//! a test means `cargo test --workspace` alone catches regressions.

use std::path::Path;

#[test]
fn workspace_is_violation_free() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives at <workspace>/crates/lint");
    let diags = paldia_lint::run(root).expect("workspace is readable");
    assert!(
        diags.is_empty(),
        "workspace has lint violations:\n{}",
        paldia_lint::render_text(&diags)
    );
}
