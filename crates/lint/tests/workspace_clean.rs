//! The workspace itself must be violation-free under the shipped allowlist
//! — including the boundary-graph passes (b1/b2/reach/stale-allow) and
//! with every crate classified. This is the same check `scripts/ci.sh`
//! runs via the binary; keeping it as a test means `cargo test --workspace`
//! alone catches regressions.

use std::path::Path;

fn workspace_root() -> &'static Path {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("lint crate lives at <workspace>/crates/lint")
}

#[test]
fn workspace_is_violation_free() {
    let report = paldia_lint::analyze(workspace_root()).expect("workspace is readable");
    assert!(
        report.diagnostics.is_empty(),
        "workspace has lint violations:\n{}",
        paldia_lint::render_text(&report.diagnostics)
    );
}

#[test]
fn every_workspace_crate_is_classified() {
    let report = paldia_lint::analyze(workspace_root()).expect("workspace is readable");
    let unclassified: Vec<&str> = report
        .crates
        .iter()
        .filter(|(_, c)| c == "unclassified")
        .map(|(d, _)| d.as_str())
        .collect();
    assert!(
        unclassified.is_empty(),
        "crates missing from classification.toml: {unclassified:?}"
    );
    // The manifest pins the architecture: the simulation path is
    // deterministic-core, the experiment drivers sim-facing, the CLI/bench
    // layer shell, and the vendored shims + this analyzer tooling.
    let class = |dir: &str| -> &str {
        report
            .crates
            .iter()
            .find(|(d, _)| d == dir)
            .map(|(_, c)| c.as_str())
            .unwrap_or_else(|| panic!("crate {dir} not discovered"))
    };
    for dc in [
        "sim",
        "hw",
        "workloads",
        "traces",
        "metrics",
        "obs",
        "cluster",
        "core",
    ] {
        assert_eq!(class(dc), "deterministic-core", "{dc}");
    }
    for sf in ["baselines", "experiments"] {
        assert_eq!(class(sf), "sim-facing", "{sf}");
    }
    for sh in ["bench", "serve", "root"] {
        assert_eq!(class(sh), "shell", "{sh}");
    }
    for tl in ["lint", "proptest", "criterion"] {
        assert_eq!(class(tl), "tooling", "{tl}");
    }
    assert_eq!(report.crates.len(), 16, "{:?}", report.crates);
    assert!(
        report.files_scanned > 100,
        "suspiciously few files scanned: {}",
        report.files_scanned
    );
}

/// The workspace being clean must mean "the call graph reached the fenced
/// sinks and every one was a reviewed exemption", not "the graph was
/// silently empty". Re-run the reachability pass with suppression disabled:
/// the PALDIA_JOBS read inside the worker pool must then surface, with a
/// chain rooted at a simulation entry point.
#[test]
fn reach_pass_actually_walks_the_real_call_graph() {
    let root = workspace_root();
    let (graph, manifest_diags) = paldia_lint::graph::load(root).expect("workspace readable");
    assert!(
        manifest_diags.is_empty(),
        "{}",
        paldia_lint::render_text(&manifest_diags)
    );
    let asts = paldia_lint::parse_workspace(root).expect("workspace readable");
    assert!(asts.iter().any(|a| a.krate == "cluster"), "cluster parsed");

    let mut consulted = 0usize;
    let mut deny_all = |_: &str, _: usize, _: &[&str]| {
        consulted += 1;
        false
    };
    let diags = paldia_lint::reach::check_reach(&graph, &asts, &mut deny_all);
    assert!(
        consulted >= 2,
        "expected the env::var sinks in pool.rs and experiments/common.rs to be probed"
    );
    let pool_hit = diags
        .iter()
        .find(|d| d.path == "crates/sim/src/pool.rs" && d.message.contains("std::env::var"))
        .unwrap_or_else(|| {
            panic!(
                "the PALDIA_JOBS read must be reachable from a simulation seed; got:\n{}",
                paldia_lint::render_text(&diags)
            )
        });
    assert!(
        pool_hit.message.starts_with("call chain `"),
        "{}",
        pool_hit.message
    );
}
