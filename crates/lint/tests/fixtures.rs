//! Self-test corpus: runs the analyzer over `crates/lint/fixtures/token/`
//! (a mini workspace with seeded violations) and asserts the EXACT
//! diagnostic set — every positive case fires on its pinned line, and no
//! negative case (hatched, `#[cfg(test)]`, exempt path, masked byte/raw
//! string, sanctioned idiom) leaks through.

use std::path::Path;

fn fixture_diags() -> Vec<(String, usize, &'static str)> {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/token");
    paldia_lint::run(&root)
        .expect("fixtures directory is readable")
        .into_iter()
        .map(|d| (d.path, d.line, d.rule))
        .collect()
}

#[test]
fn corpus_produces_exactly_the_seeded_violations() {
    let expected: Vec<(String, usize, &'static str)> = vec![
        // d3: float equality + partial_cmp().unwrap()/expect(). Lives in
        // `baselines` (sim-facing, not a library crate) so r1 stays quiet.
        ("crates/baselines/src/d3_cases.rs".into(), 3, "d3"),
        ("crates/baselines/src/d3_cases.rs".into(), 7, "d3"),
        ("crates/baselines/src/d3_cases.rs".into(), 11, "d3"),
        ("crates/baselines/src/d3_cases.rs".into(), 15, "d3"),
        // d1: HashMap/HashSet in a sim-facing crate.
        ("crates/cluster/src/d1_cases.rs".into(), 2, "d1"),
        ("crates/cluster/src/d1_cases.rs".into(), 3, "d1"),
        ("crates/cluster/src/d1_cases.rs".into(), 6, "d1"),
        // Lexer edge cases: the escaped-quote char literals and byte/raw
        // strings above this line are masked; the two live `HashMap`
        // mentions on the declaration line both fire (a desynced masker
        // would swallow them).
        ("crates/cluster/src/lexer_edge_cases.rs".into(), 14, "d1"),
        ("crates/cluster/src/lexer_edge_cases.rs".into(), 14, "d1"),
        // stale-allow: a hatch that suppresses nothing, and one naming an
        // unknown rule. The live hatch on the HashMap alias below them is
        // used, so it must NOT appear here.
        ("crates/cluster/src/stale_cases.rs".into(), 5, "stale-allow"),
        (
            "crates/cluster/src/stale_cases.rs".into(),
            11,
            "stale-allow",
        ),
        // d2: Instant / SystemTime / env::var in a deterministic crate.
        ("crates/core/src/d2_cases.rs".into(), 2, "d2"),
        ("crates/core/src/d2_cases.rs".into(), 4, "d2"),
        ("crates/core/src/d2_cases.rs".into(), 5, "d2"),
        ("crates/core/src/d2_cases.rs".into(), 9, "d2"),
        // r1: panicking shortcuts in a library crate.
        ("crates/core/src/r1_cases.rs".into(), 3, "r1"),
        ("crates/core/src/r1_cases.rs".into(), 7, "r1"),
        ("crates/core/src/r1_cases.rs".into(), 11, "r1"),
        ("crates/core/src/r1_cases.rs".into(), 15, "r1"),
        ("crates/core/src/r1_cases.rs".into(), 19, "r1"),
        // r2: narrowing cast in the event-key file.
        ("crates/sim/src/event.rs".into(), 5, "r2"),
    ];
    assert_eq!(fixture_diags(), expected);
}

#[test]
fn every_rule_has_a_positive_and_a_negative_case() {
    let fired: std::collections::BTreeSet<&'static str> =
        fixture_diags().into_iter().map(|(_, _, r)| r).collect();
    for rule in paldia_lint::rules::ALL_RULES {
        assert!(fired.contains(rule), "no positive fixture case for {rule}");
    }
    assert!(
        fired.contains("stale-allow"),
        "no positive fixture case for the stale-hatch audit"
    );
    // Negatives: each fixture file contains sanctioned idioms and hatched
    // sites beyond the pinned lines; the exact-set assertion above proves
    // none of them fire. The exempt-path fixture is the per-rule blanket
    // negative: it packs a violation of every rule into a /tests/ path.
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/token");
    let exempt = root.join("crates/sim/tests/exempt.rs");
    assert!(exempt.is_file(), "exempt fixture must exist");
    assert!(
        !fixture_diags()
            .iter()
            .any(|(p, _, _)| p.contains("tests/exempt.rs")),
        "exempt paths must produce no diagnostics"
    );
}

#[test]
fn unknown_rule_hatches_name_the_problem() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/token");
    let diags = paldia_lint::run(&root).expect("fixtures readable");
    let unknown = diags
        .iter()
        .find(|d| d.path.ends_with("stale_cases.rs") && d.line == 11)
        .expect("the d9 hatch is audited");
    assert!(
        unknown.message.contains("unknown rule"),
        "{}",
        unknown.message
    );
}

#[test]
fn render_formats_are_stable() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR")).join("fixtures/token");
    let diags = paldia_lint::run(&root).expect("fixtures readable");
    let text = paldia_lint::render_text(&diags);
    assert!(text.contains("crates/cluster/src/d1_cases.rs:2:d1:"));
    let json = paldia_lint::render_json(&diags);
    assert!(json.contains("\"file\": \"crates/cluster/src/d1_cases.rs\""));
    assert!(json.contains("\"rule\": \"d1\""));
    assert!(json.trim_start().starts_with('['));
}
