//! CLI entry point:
//! `paldia-lint [ROOT] [--format text|json] [--json-artifact FILE] [--deny-all]`.
//!
//! Exits 0 when the tree is clean, 1 when violations are found, 2 on usage
//! or I/O errors. `--deny-all` is the CI mode: it is the default behaviour
//! today (every rule already denies), but pinning the flag in `scripts/
//! ci.sh` keeps the invocation stable if warn-only rules are ever added.
//! `--json-artifact FILE` additionally writes the full report object
//! (crate classification, file count, diagnostics) for CI to archive.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = "text".to_string();
    let mut artifact: Option<PathBuf> = None;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next() {
                Some(f) if f == "text" || f == "json" => format = f,
                _ => {
                    eprintln!("paldia-lint: --format takes `text` or `json`");
                    return ExitCode::from(2);
                }
            },
            "--json-artifact" => match args.next() {
                Some(f) => artifact = Some(PathBuf::from(f)),
                None => {
                    eprintln!("paldia-lint: --json-artifact takes a file path");
                    return ExitCode::from(2);
                }
            },
            "--deny-all" => {} // all rules deny by default; accepted for CI stability
            "--help" | "-h" => {
                println!(
                    "usage: paldia-lint [ROOT] [--format text|json] [--json-artifact FILE] \
                     [--deny-all]\n\
                     \n\
                     Statically checks the workspace against the determinism &\n\
                     robustness token rules d1/d2/d3/r1/r2, the crate-boundary\n\
                     rules b1/b2, the fenced-symbol reachability gate, and the\n\
                     stale-hatch audit (see crates/lint/README.md and\n\
                     DESIGN.md \u{a7}13). Exits 1 if any violation is found.\n\
                     --json-artifact writes the full report object (crate\n\
                     classes, file count, diagnostics) to FILE for CI."
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("paldia-lint: unknown flag `{flag}` (try --help)");
                return ExitCode::from(2);
            }
            path => root = PathBuf::from(path),
        }
    }

    let started = Instant::now();
    let report = match paldia_lint::analyze(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("paldia-lint: error walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };
    let elapsed_ms = started.elapsed().as_millis();
    let diags = &report.diagnostics;

    if let Some(path) = &artifact {
        if let Err(e) = std::fs::write(path, paldia_lint::render_json_report(&report)) {
            eprintln!("paldia-lint: error writing {}: {e}", path.display());
            return ExitCode::from(2);
        }
    }

    if format == "json" {
        print!("{}", paldia_lint::render_json(diags));
    } else {
        print!("{}", paldia_lint::render_text(diags));
        let unclassified = report
            .crates
            .iter()
            .filter(|(_, c)| c == "unclassified")
            .count();
        let classified = report.crates.len() - unclassified;
        if diags.is_empty() {
            println!(
                "paldia-lint: clean — {} files, {classified} crates classified, {elapsed_ms} ms",
                report.files_scanned
            );
        } else {
            println!(
                "paldia-lint: {} violation(s) — {} files, {classified} crates classified, \
                 {elapsed_ms} ms",
                diags.len(),
                report.files_scanned
            );
        }
    }

    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
