//! CLI entry point: `paldia-lint [ROOT] [--format text|json] [--deny-all]`.
//!
//! Exits 0 when the tree is clean, 1 when violations are found, 2 on usage
//! or I/O errors. `--deny-all` is the CI mode: it is the default behaviour
//! today (every rule already denies), but pinning the flag in `scripts/
//! ci.sh` keeps the invocation stable if warn-only rules are ever added.

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut format = "text".to_string();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--format" => match args.next() {
                Some(f) if f == "text" || f == "json" => format = f,
                _ => {
                    eprintln!("paldia-lint: --format takes `text` or `json`");
                    return ExitCode::from(2);
                }
            },
            "--deny-all" => {} // all rules deny by default; accepted for CI stability
            "--help" | "-h" => {
                println!(
                    "usage: paldia-lint [ROOT] [--format text|json] [--deny-all]\n\
                     \n\
                     Statically checks the workspace against the determinism &\n\
                     robustness rules d1/d2/d3/r1/r2 (see crates/lint/README.md).\n\
                     Exits 1 if any violation is found."
                );
                return ExitCode::SUCCESS;
            }
            flag if flag.starts_with('-') => {
                eprintln!("paldia-lint: unknown flag `{flag}` (try --help)");
                return ExitCode::from(2);
            }
            path => root = PathBuf::from(path),
        }
    }

    let diags = match paldia_lint::run(&root) {
        Ok(d) => d,
        Err(e) => {
            eprintln!("paldia-lint: error walking {}: {e}", root.display());
            return ExitCode::from(2);
        }
    };

    if format == "json" {
        print!("{}", paldia_lint::render_json(&diags));
    } else {
        print!("{}", paldia_lint::render_text(&diags));
        if diags.is_empty() {
            println!("paldia-lint: clean");
        } else {
            println!("paldia-lint: {} violation(s)", diags.len());
        }
    }

    if diags.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
