//! Pass 1 of the boundary-graph analyzer: a lightweight item parser over
//! the existing token stream.
//!
//! This is deliberately **approximate** — it recovers just enough structure
//! for the crate-graph (b2) and reachability passes: the module position of
//! a file, its `use` declarations (with nested groups, globs, and `as`
//! renames flattened to one leaf each), its `fn` items (with the `impl`
//! type they hang off, when any), and the call sites inside each body
//! (free/path calls and `.method(…)` calls). Macro bodies, trait bounds,
//! and expression structure are ignored; `#[cfg(test)]` regions are skipped
//! entirely, matching the token rules' scope.

use crate::lexer::{Lexed, Tok, Token};

/// One `use` leaf: `use a::b::{c as d, e::*};` yields two decls.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct UseDecl {
    /// 1-based line of the `use` keyword.
    pub line: usize,
    /// True for `pub use` / `pub(crate) use` re-exports.
    pub is_pub: bool,
    /// Full path segments as written (for a glob: the module path).
    pub path: Vec<String>,
    /// `as` rename, if any.
    pub alias: Option<String>,
    /// True for a trailing `::*`.
    pub glob: bool,
}

impl UseDecl {
    /// The name this leaf binds in the importing file (None for globs).
    pub fn binding(&self) -> Option<&str> {
        if self.glob {
            return None;
        }
        match &self.alias {
            Some(a) => Some(a.as_str()),
            None => self.path.last().map(String::as_str),
        }
    }

    /// The declaration as written, for diagnostics.
    pub fn rendered(&self) -> String {
        let mut s = String::new();
        if self.is_pub {
            s.push_str("pub ");
        }
        s.push_str("use ");
        s.push_str(&self.path.join("::"));
        if self.glob {
            s.push_str("::*");
        }
        if let Some(a) = &self.alias {
            s.push_str(" as ");
            s.push_str(a);
        }
        s
    }
}

/// One call site inside a function body.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CallSite {
    /// 1-based line of the called name.
    pub line: usize,
    /// Path segments as written (`helper::phase` → `["helper","phase"]`;
    /// a method call has exactly its method name).
    pub path: Vec<String>,
    /// True for `.name(…)` receiver calls.
    pub method: bool,
}

/// One `fn` item.
#[derive(Clone, Debug)]
pub struct FnItem {
    pub name: String,
    /// The `impl` type the fn hangs off, when inside an impl block.
    pub self_ty: Option<String>,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Call sites inside this fn's body, innermost-fn attribution.
    pub calls: Vec<CallSite>,
}

/// The parsed view of one source file.
#[derive(Debug)]
pub struct FileAst {
    /// Path relative to the scanned root, `/`-separated.
    pub path: String,
    /// Crate directory name (`sim`, `cluster`, …; `root` for the facade).
    pub krate: String,
    /// Module path derived from the file's location under `src/`.
    pub module: Vec<String>,
    pub uses: Vec<UseDecl>,
    pub fns: Vec<FnItem>,
}

impl FileAst {
    /// Display name of a fn in this file: `crate::module::Type::name`.
    pub fn qualify(&self, f: &FnItem) -> String {
        let mut parts: Vec<&str> = Vec::with_capacity(4);
        parts.push(&self.krate);
        for m in &self.module {
            parts.push(m);
        }
        if let Some(ty) = &f.self_ty {
            parts.push(ty);
        }
        parts.push(&f.name);
        parts.join("::")
    }
}

/// The crate directory a relative path belongs to (`root` for `src/…`).
pub fn crate_dir(path: &str) -> Option<String> {
    if let Some(rest) = path.strip_prefix("crates/") {
        return rest.split('/').next().map(str::to_string);
    }
    if path.starts_with("src/") {
        return Some("root".to_string());
    }
    None
}

/// The module path of a file under its crate's `src/` directory:
/// `lib.rs`/`main.rs` → `[]`, `foo.rs`/`foo/mod.rs` → `[foo]`,
/// `fleet/shard.rs` → `[fleet, shard]`.
fn module_path(path: &str, krate: &str) -> Vec<String> {
    let rest = if krate == "root" {
        path
    } else {
        let prefix = format!("crates/{krate}/");
        match path.strip_prefix(&prefix) {
            Some(r) => r,
            None => path,
        }
    };
    let rest = rest.strip_prefix("src/").unwrap_or(rest);
    let rest = rest.strip_suffix(".rs").unwrap_or(rest);
    let mut out: Vec<String> = rest
        .split('/')
        .filter(|s| !s.is_empty())
        .map(str::to_string)
        .collect();
    if matches!(out.last().map(String::as_str), Some("lib" | "main" | "mod")) {
        out.pop();
    }
    out
}

const KEYWORDS: &[&str] = &[
    "if", "else", "while", "match", "for", "return", "loop", "in", "as", "let", "move", "where",
    "unsafe", "fn", "impl", "pub", "use", "mod", "struct", "enum", "trait", "type", "const",
    "static", "ref", "mut", "dyn", "break", "continue",
];

/// Parse one lexed file into its item-level structure.
pub fn parse(path: &str, lexed: &Lexed) -> FileAst {
    let krate = crate_dir(path).unwrap_or_else(|| "root".to_string());
    let module = module_path(path, &krate);
    let toks = &lexed.tokens;

    let uses = parse_uses(toks, lexed);
    let impls = find_impl_spans(toks);
    let mut fns = find_fns(toks, lexed, &impls);
    attribute_calls(toks, lexed, &mut fns);

    FileAst {
        path: path.to_string(),
        krate,
        module,
        uses,
        fns: fns.into_iter().map(|f| f.item).collect(),
    }
}

/// True when token `i` sits in item position (start of file or right after
/// `;`, `{`, `}`, or an attribute's `]`).
fn item_position(toks: &[Token], i: usize) -> bool {
    match i.checked_sub(1).map(|p| &toks[p].tok) {
        None => true,
        Some(Tok::Op(';' | '{' | '}' | ']')) => true,
        Some(Tok::Ident(s)) => s == "pub",
        Some(Tok::Op(')')) => {
            // `pub(crate)` / `pub(super)` visibility group.
            let mut depth = 0usize;
            let mut j = i - 1;
            loop {
                match &toks[j].tok {
                    Tok::Op(')') => depth += 1,
                    Tok::Op('(') => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                if j == 0 {
                    return false;
                }
                j -= 1;
            }
            j.checked_sub(1)
                .is_some_and(|p| matches!(&toks[p].tok, Tok::Ident(s) if s == "pub"))
        }
        _ => false,
    }
}

fn parse_uses(toks: &[Token], lexed: &Lexed) -> Vec<UseDecl> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let is_use = matches!(&toks[i].tok, Tok::Ident(s) if s == "use");
        if !is_use || lexed.in_test_code(i) || !item_position(toks, i) {
            i += 1;
            continue;
        }
        let is_pub = is_pub_item(toks, i);
        let line = toks[i].line;
        let start = i + 1;
        let mut end = start;
        while end < toks.len() && !matches!(&toks[end].tok, Tok::Op(';')) {
            end += 1;
        }
        let mut cursor = start;
        parse_use_tree(
            toks,
            &mut cursor,
            end,
            &mut Vec::new(),
            line,
            is_pub,
            &mut out,
        );
        i = end + 1;
    }
    out
}

/// True when the item at token `i` carries a `pub` / `pub(crate)` prefix.
fn is_pub_item(toks: &[Token], i: usize) -> bool {
    match i.checked_sub(1).map(|p| &toks[p].tok) {
        Some(Tok::Ident(s)) => s == "pub",
        Some(Tok::Op(')')) => item_position(toks, i),
        _ => false,
    }
}

/// Recursive-descent over one use tree; appends flattened leaves. On entry
/// the prefix holds the group's base path; `,` rewinds to it, `}` returns
/// to the enclosing group.
fn parse_use_tree(
    toks: &[Token],
    cursor: &mut usize,
    end: usize,
    prefix: &mut Vec<String>,
    line: usize,
    is_pub: bool,
    out: &mut Vec<UseDecl>,
) {
    let base = prefix.len();
    while *cursor < end {
        match &toks[*cursor].tok {
            Tok::Ident(s) if s == "as" => {
                *cursor += 1;
                if let Some(Tok::Ident(alias)) = toks.get(*cursor).map(|t| &t.tok) {
                    if let Some(last) = out.last_mut() {
                        last.alias = Some(alias.clone());
                    }
                    *cursor += 1;
                }
            }
            Tok::Ident(s) => {
                prefix.push(s.clone());
                *cursor += 1;
                // Leaf unless followed by `::`.
                let continues = matches!(toks.get(*cursor).map(|t| &t.tok), Some(Tok::Op(':')))
                    && matches!(toks.get(*cursor + 1).map(|t| &t.tok), Some(Tok::Op(':')));
                if continues {
                    *cursor += 2;
                } else {
                    out.push(UseDecl {
                        line,
                        is_pub,
                        path: prefix.clone(),
                        alias: None,
                        glob: false,
                    });
                    prefix.pop();
                }
            }
            Tok::Op('*') => {
                out.push(UseDecl {
                    line,
                    is_pub,
                    path: prefix.clone(),
                    alias: None,
                    glob: true,
                });
                *cursor += 1;
            }
            Tok::Op('{') => {
                *cursor += 1;
                parse_use_tree(toks, cursor, end, prefix, line, is_pub, out);
                // The recursive call consumed through its matching `}`.
                prefix.truncate(base);
            }
            Tok::Op(',') => {
                *cursor += 1;
                prefix.truncate(base);
            }
            Tok::Op('}') => {
                *cursor += 1;
                return;
            }
            _ => {
                *cursor += 1;
            }
        }
    }
}

/// An `impl` block's type name and brace-matched token span.
struct ImplSpan {
    ty: String,
    start: usize,
    end: usize,
}

fn find_impl_spans(toks: &[Token]) -> Vec<ImplSpan> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let is_impl = matches!(&toks[i].tok, Tok::Ident(s) if s == "impl");
        if !is_impl || !item_position(toks, i) {
            i += 1;
            continue;
        }
        // Collect idents at angle-depth 0 up to the opening brace; `for`
        // resets the collection so `impl Trait for Type` names `Type`.
        let mut j = i + 1;
        let mut angle = 0isize;
        let mut ty: Option<String> = None;
        while j < toks.len() {
            match &toks[j].tok {
                Tok::Op('<') => angle += 1,
                Tok::Op('>') => angle -= 1,
                Tok::Op('{') if angle <= 0 => break,
                Tok::Op(';') if angle <= 0 => break,
                Tok::Ident(s) if s == "for" && angle <= 0 => ty = None,
                Tok::Ident(s) if angle <= 0 && !KEYWORDS.contains(&s.as_str()) => {
                    ty = Some(s.clone());
                }
                _ => {}
            }
            j += 1;
        }
        if j < toks.len() && matches!(&toks[j].tok, Tok::Op('{')) {
            let end = match_brace(toks, j);
            if let (Some(ty), Some(end)) = (ty, end) {
                out.push(ImplSpan { ty, start: j, end });
            }
            i = j + 1;
        } else {
            i = j + 1;
        }
    }
    out
}

/// Given the index of `{`, return the index one past its matching `}`.
fn match_brace(toks: &[Token], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (k, t) in toks.iter().enumerate().skip(open) {
        match &t.tok {
            Tok::Op('{') => depth += 1,
            Tok::Op('}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(k + 1);
                }
            }
            _ => {}
        }
    }
    None
}

struct FnSpan {
    item: FnItem,
    body_start: usize,
    body_end: usize,
}

fn find_fns(toks: &[Token], lexed: &Lexed, impls: &[ImplSpan]) -> Vec<FnSpan> {
    let mut out = Vec::new();
    let mut i = 0usize;
    while i < toks.len() {
        let is_fn = matches!(&toks[i].tok, Tok::Ident(s) if s == "fn");
        if !is_fn || lexed.in_test_code(i) {
            i += 1;
            continue;
        }
        let Some(Tok::Ident(name)) = toks.get(i + 1).map(|t| &t.tok) else {
            i += 1;
            continue;
        };
        // Scan for the body `{` (or a `;` for body-less trait decls) at
        // paren/bracket depth 0; array types carry `;` at depth > 0.
        let mut j = i + 2;
        let mut depth = 0isize;
        let mut body = None;
        while j < toks.len() {
            match &toks[j].tok {
                Tok::Op('(' | '[') => depth += 1,
                Tok::Op(')' | ']') => depth -= 1,
                Tok::Op('{') if depth == 0 => {
                    body = Some(j);
                    break;
                }
                Tok::Op(';') if depth == 0 => break,
                _ => {}
            }
            j += 1;
        }
        let Some(body_start) = body else {
            i = j + 1;
            continue;
        };
        let Some(body_end) = match_brace(toks, body_start) else {
            i = j + 1;
            continue;
        };
        let self_ty = impls
            .iter()
            .find(|s| s.start < i && i < s.end)
            .map(|s| s.ty.clone());
        out.push(FnSpan {
            item: FnItem {
                name: name.clone(),
                self_ty,
                line: toks[i].line,
                calls: Vec::new(),
            },
            body_start,
            body_end,
        });
        // Continue INSIDE the body so nested fns are collected too.
        i = body_start + 1;
    }
    out
}

/// Scan every call site and attribute it to the innermost enclosing fn.
fn attribute_calls(toks: &[Token], lexed: &Lexed, fns: &mut [FnSpan]) {
    for i in 0..toks.len() {
        let Tok::Ident(name) = &toks[i].tok else {
            continue;
        };
        if lexed.in_test_code(i) || KEYWORDS.contains(&name.as_str()) {
            continue;
        }
        if !matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Op('('))) {
            continue;
        }
        let prev = i.checked_sub(1).map(|p| &toks[p].tok);
        if matches!(prev, Some(Tok::Ident(s)) if s == "fn") {
            continue;
        }
        let method = matches!(prev, Some(Tok::Op('.')));
        let mut path = vec![name.clone()];
        if !method {
            // Walk leading `Seg::` qualifiers backwards.
            let mut k = i;
            while k >= 3
                && matches!(&toks[k - 1].tok, Tok::Op(':'))
                && matches!(&toks[k - 2].tok, Tok::Op(':'))
            {
                if let Tok::Ident(seg) = &toks[k - 3].tok {
                    if KEYWORDS.contains(&seg.as_str()) {
                        break;
                    }
                    path.insert(0, seg.clone());
                    k -= 3;
                } else {
                    break;
                }
            }
        }
        let line = toks[i].line;
        // Innermost enclosing fn = the one with the latest body_start that
        // still covers i.
        let owner = fns
            .iter_mut()
            .filter(|f| f.body_start < i && i < f.body_end)
            .max_by_key(|f| f.body_start);
        if let Some(owner) = owner {
            owner.item.calls.push(CallSite { line, path, method });
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn ast(src: &str) -> FileAst {
        parse("crates/demo/src/lib.rs", &lex(src))
    }

    #[test]
    fn module_paths_from_file_locations() {
        assert_eq!(
            parse("crates/cluster/src/fleet/shard.rs", &lex("")).module,
            vec!["fleet".to_string(), "shard".to_string()]
        );
        assert!(parse("crates/sim/src/lib.rs", &lex("")).module.is_empty());
        assert_eq!(
            parse("crates/sim/src/foo/mod.rs", &lex("")).module,
            vec!["foo".to_string()]
        );
        assert_eq!(parse("crates/sim/src/engine.rs", &lex("")).krate, "sim");
        assert_eq!(parse("src/lib.rs", &lex("")).krate, "root");
    }

    #[test]
    fn use_trees_flatten_groups_globs_and_renames() {
        let a = ast("use std::time::{Duration, Instant as Clock};\npub use std::collections::*;\nuse a::b;\n");
        assert_eq!(a.uses.len(), 4);
        assert_eq!(a.uses[0].path, vec!["std", "time", "Duration"]);
        assert!(!a.uses[0].is_pub);
        assert_eq!(a.uses[1].path, vec!["std", "time", "Instant"]);
        assert_eq!(a.uses[1].alias.as_deref(), Some("Clock"));
        assert_eq!(a.uses[1].binding(), Some("Clock"));
        assert!(a.uses[2].glob && a.uses[2].is_pub);
        assert_eq!(a.uses[2].path, vec!["std", "collections"]);
        assert_eq!(a.uses[3].path, vec!["a", "b"]);
    }

    #[test]
    fn nested_use_groups() {
        let a = ast("use x::{y::{z, w as v}, q};\n");
        let paths: Vec<Vec<String>> = a.uses.iter().map(|u| u.path.clone()).collect();
        assert_eq!(
            paths,
            vec![
                vec!["x".to_string(), "y".into(), "z".into()],
                vec!["x".to_string(), "y".into(), "w".into()],
                vec!["x".to_string(), "q".into()],
            ]
        );
        assert_eq!(a.uses[1].alias.as_deref(), Some("v"));
    }

    #[test]
    fn fns_calls_and_impl_types() {
        let src = "
pub struct Sched;
impl Sched {
    pub fn tick(&self) -> u64 {
        helper::phase() + self.inner()
    }
    fn inner(&self) -> u64 { 1 }
}
fn free() {
    let t = std::time::Instant::now();
    t.elapsed();
}
";
        let a = ast(src);
        let names: Vec<String> = a.fns.iter().map(|f| a.qualify(f)).collect();
        assert_eq!(
            names,
            vec!["demo::Sched::tick", "demo::Sched::inner", "demo::free"]
        );
        let tick = &a.fns[0];
        assert_eq!(
            tick.calls[0],
            CallSite {
                line: 5,
                path: vec!["helper".into(), "phase".into()],
                method: false
            }
        );
        assert!(tick.calls[1].method && tick.calls[1].path == vec!["inner".to_string()]);
        let free = &a.fns[2];
        assert_eq!(
            free.calls[0].path,
            vec![
                "std".to_string(),
                "time".into(),
                "Instant".into(),
                "now".into()
            ]
        );
        assert!(free.calls[1].method);
    }

    #[test]
    fn nested_fns_get_innermost_attribution() {
        let src = "
fn outer() {
    fn inner() {
        deep_call();
    }
    shallow_call();
}
";
        let a = ast(src);
        let outer = a.fns.iter().find(|f| f.name == "outer").expect("outer");
        let inner = a.fns.iter().find(|f| f.name == "inner").expect("inner");
        assert_eq!(outer.calls.len(), 1);
        assert_eq!(outer.calls[0].path, vec!["shallow_call".to_string()]);
        assert_eq!(inner.calls[0].path, vec!["deep_call".to_string()]);
    }

    #[test]
    fn trait_decls_and_test_code_are_skipped() {
        let src = "
trait T { fn decl_only(&self); }
#[cfg(test)]
mod tests {
    fn t() { hidden_call(); }
    use std::time::Instant;
}
fn prod() { visible_call(); }
";
        let a = ast(src);
        assert!(a
            .fns
            .iter()
            .all(|f| f.name != "decl_only" || f.calls.is_empty()));
        assert!(a.fns.iter().all(|f| f.name != "t"));
        assert!(a.uses.is_empty(), "test-gated uses are skipped");
        let prod = a.fns.iter().find(|f| f.name == "prod").expect("prod");
        assert_eq!(prod.calls[0].path, vec!["visible_call".to_string()]);
    }

    #[test]
    fn macros_and_keywords_are_not_calls() {
        let src = "fn f() { println!(\"x\"); if cond() { return; } match x() {} }";
        let a = ast(src);
        let paths: Vec<Vec<String>> = a.fns[0].calls.iter().map(|c| c.path.clone()).collect();
        assert_eq!(paths, vec![vec!["cond".to_string()], vec!["x".to_string()]]);
    }
}
