//! Pass 3 of the boundary-graph analyzer: interprocedural reachability.
//!
//! Builds an approximate call graph over every classified non-tooling
//! crate's parsed fns and walks it from the simulation entry points — fn
//! names starting `run_simulation`/`run_fleet` and `PaldiaScheduler`
//! methods — looking for paths to **fenced symbols**: `Instant`,
//! `SystemTime`, `HashMap`, `HashSet` constructors/associated fns,
//! `std::env::var`/`var_os`, and `std::thread::spawn`. A hit is reported as
//! a full call-chain narrative so the reader can see *how* the entry point
//! reaches the wall clock, not just that it does.
//!
//! Approximations, chosen to fail safe for this workspace's idioms:
//!
//! * Edges are name-matched. A qualified call (`helper::phase()`) only
//!   binds to fns whose crate, module, or impl type matches the qualifier;
//!   a bare call binds within its own crate; a `.method()` call binds to
//!   any same-closure fn of that name. All edges are further restricted to
//!   the caller crate's `[dependencies]` closure, so a crate can never
//!   acquire an edge into a crate it cannot link against.
//! * Only path-form sinks count (`Instant::now()`, `std::thread::spawn`).
//!   The method-form `scope.spawn(..)` of `std::thread::scope` is
//!   deliberately not fenced: scoped pools join before the tick advances
//!   and are already covered by the pool's determinism tests.
//! * A fenced call site suppressed by its governing token rule's hatch or
//!   allowlist entry (`d1` for hash containers, `d2` for clocks/env), or by
//!   an explicit `reach` hatch, is a reviewed exemption and not a sink.
//!
//! BFS from all seeds with sorted adjacency gives deterministic shortest
//! chains; one narrative is emitted per distinct sink site.

use std::collections::BTreeMap;
use std::collections::VecDeque;

use crate::graph::{fenced_target, Class, CrateGraph};
use crate::parse::FileAst;
use crate::rules::Diagnostic;

/// Seed predicate: simulation entry points. `run_replay` is the serving
/// shell's shared replay driver (DESIGN.md §14) — seeding it proves the
/// session executor path a live `paldia-serve` session runs is as fenced
/// from the wall clock as the batch engines.
fn is_seed(f: &crate::parse::FnItem) -> bool {
    if f.name.starts_with("run_simulation")
        || f.name.starts_with("run_fleet")
        || f.name.starts_with("run_replay")
    {
        return true;
    }
    f.self_ty.as_deref() == Some("PaldiaScheduler")
}

/// The token rule that governs a fenced symbol, when one does: its hatch
/// or allowlist entry doubles as a reviewed reach exemption.
fn governing_rule(canon: &str) -> Option<&'static str> {
    if canon.starts_with("std::collections::") {
        Some("d1")
    } else if canon.starts_with("std::time::") || canon.starts_with("std::env") {
        Some("d2")
    } else {
        None
    }
}

struct FnNode {
    ast_idx: usize,
    fn_idx: usize,
    display: String,
    krate: String,
    class: Class,
    is_seed: bool,
    /// Resolved call-graph edges (node indices), sorted.
    edges: Vec<usize>,
    /// Unsuppressed fenced call sites: (line, canonical symbol).
    sinks: Vec<(usize, String)>,
}

/// Run the reachability pass. `suppress(path, line, rules)` must return
/// true when any of `rules` has a hatch or allowlist entry covering the
/// site — and record that usage for the stale-allow audit.
pub fn check_reach(
    graph: &CrateGraph,
    asts: &[FileAst],
    suppress: &mut dyn FnMut(&str, usize, &[&str]) -> bool,
) -> Vec<Diagnostic> {
    // Per-file import map: bound name → full path as written.
    let aliases: Vec<BTreeMap<&str, &[String]>> = asts
        .iter()
        .map(|ast| {
            let mut m = BTreeMap::new();
            for u in &ast.uses {
                if u.glob || u.alias.is_none() && u.path.len() < 2 {
                    continue;
                }
                if let Some(b) = u.binding() {
                    m.entry(b).or_insert(&u.path[..]);
                }
            }
            m
        })
        .collect();

    // Nodes: every fn of a classified, non-tooling crate, in file order
    // (asts arrive path-sorted, fns in token order) — a stable id space.
    let mut nodes: Vec<FnNode> = Vec::new();
    for (ai, ast) in asts.iter().enumerate() {
        let Some(class) = graph.class_of(&ast.krate) else {
            continue;
        };
        if class == Class::Tooling {
            continue;
        }
        for (fi, f) in ast.fns.iter().enumerate() {
            nodes.push(FnNode {
                ast_idx: ai,
                fn_idx: fi,
                display: ast.qualify(f),
                krate: ast.krate.clone(),
                class,
                is_seed: matches!(class, Class::DeterministicCore | Class::SimFacing) && is_seed(f),
                edges: Vec::new(),
                sinks: Vec::new(),
            });
        }
    }

    // Name index for edge candidates.
    let mut by_name: BTreeMap<&str, Vec<usize>> = BTreeMap::new();
    for (i, n) in nodes.iter().enumerate() {
        let f = &asts[n.ast_idx].fns[n.fn_idx];
        by_name.entry(&f.name).or_default().push(i);
    }
    let closures: BTreeMap<&str, Vec<String>> = nodes
        .iter()
        .map(|n| (&n.krate[..], graph.dep_closure(&n.krate)))
        .collect();

    // Resolve each call site to sinks and edges: per node, the outgoing
    // edge targets plus the (line, canonical path) fenced sinks.
    type Resolved = (Vec<usize>, Vec<(usize, String)>);
    let mut resolved: Vec<Resolved> = Vec::new();
    for n in &nodes {
        let ast = &asts[n.ast_idx];
        let f = &ast.fns[n.fn_idx];
        let alias = &aliases[n.ast_idx];
        let closure = &closures[&n.krate[..]];
        let mut edges = Vec::new();
        let mut sinks = Vec::new();
        for call in &f.calls {
            // Splice the file's imports into the call path.
            let path: Vec<String> = match call.path.first().map(String::as_str) {
                Some(first) if !call.method => match alias.get(first) {
                    Some(target) => {
                        let mut p = target.to_vec();
                        p.extend(call.path.iter().skip(1).cloned());
                        p
                    }
                    None => call.path.clone(),
                },
                _ => call.path.clone(),
            };
            if !call.method {
                if let Some(canon) = fenced_target(&path) {
                    let mut rules: Vec<&str> = Vec::with_capacity(2);
                    if let Some(r) = governing_rule(&canon) {
                        rules.push(r);
                    }
                    rules.push("reach");
                    if !suppress(&ast.path, call.line, &rules) {
                        sinks.push((call.line, canon));
                    }
                    continue;
                }
            }
            let Some(leaf) = path.last() else { continue };
            let Some(cands) = by_name.get(leaf.as_str()) else {
                continue;
            };
            for &c in cands {
                let t = &nodes[c];
                if !closure.iter().any(|d| d == &t.krate) {
                    continue;
                }
                if call.method {
                    edges.push(c);
                    continue;
                }
                if path.len() == 1 {
                    if t.krate == n.krate {
                        edges.push(c);
                    }
                    continue;
                }
                let qual = &path[path.len() - 2];
                if qualifier_matches(qual, t, asts, &n.krate) {
                    edges.push(c);
                }
            }
        }
        edges.sort_unstable();
        edges.dedup();
        resolved.push((edges, sinks));
    }
    for (n, (edges, sinks)) in nodes.iter_mut().zip(resolved) {
        n.edges = edges;
        n.sinks = sinks;
    }

    // Multi-source BFS from the seeds, parents giving shortest chains.
    let mut parent: Vec<Option<usize>> = vec![None; nodes.len()];
    let mut visited: Vec<bool> = vec![false; nodes.len()];
    let mut queue = VecDeque::new();
    for (i, n) in nodes.iter().enumerate() {
        if n.is_seed {
            visited[i] = true;
            queue.push_back(i);
        }
    }
    while let Some(cur) = queue.pop_front() {
        for &next in &nodes[cur].edges {
            if !visited[next] {
                visited[next] = true;
                parent[next] = Some(cur);
                queue.push_back(next);
            }
        }
    }

    // One narrative per distinct sink site, in node order.
    let mut diags = Vec::new();
    let mut reported: Vec<(usize, usize)> = Vec::new();
    for (i, n) in nodes.iter().enumerate() {
        if !visited[i] || n.sinks.is_empty() {
            continue;
        }
        let mut chain = vec![i];
        while let Some(p) = parent[*chain.last().expect("chain is non-empty")] {
            chain.push(p);
        }
        chain.reverse();
        for (line, canon) in &n.sinks {
            if reported.contains(&(n.ast_idx, *line)) {
                continue;
            }
            reported.push((n.ast_idx, *line));
            let names = chain
                .iter()
                .map(|&k| format!("`{}`", nodes[k].display))
                .collect::<Vec<_>>()
                .join(" \u{2192} ");
            let crossing = chain
                .windows(2)
                .find(|w| nodes[w[0]].class != nodes[w[1]].class)
                .map(|w| {
                    format!(
                        ", crossing {}\u{2192}{} at `{}`",
                        nodes[w[0]].class.name(),
                        nodes[w[1]].class.name(),
                        nodes[w[1]].display,
                    )
                })
                .unwrap_or_default();
            diags.push(Diagnostic {
                path: asts[n.ast_idx].path.clone(),
                line: *line,
                rule: "reach",
                message: format!("call chain {names} reaches fenced `{canon}`{crossing}"),
            });
        }
    }
    diags
}

/// Does `qual` plausibly name the crate, module, or impl type of `t`?
fn qualifier_matches(qual: &str, t: &FnNode, asts: &[FileAst], caller_krate: &str) -> bool {
    if qual == "crate" || qual == "self" || qual == "super" || qual == "Self" {
        return t.krate == caller_krate;
    }
    let ast = &asts[t.ast_idx];
    let f = &ast.fns[t.fn_idx];
    if t.krate == qual || t.krate.replace('-', "_") == qual {
        return true;
    }
    if ast.module.last().is_some_and(|m| m == qual) {
        return true;
    }
    f.self_ty.as_deref() == Some(qual)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn governing_rules_map_to_token_rules() {
        assert_eq!(governing_rule("std::collections::HashMap::new"), Some("d1"));
        assert_eq!(governing_rule("std::time::Instant::now"), Some("d2"));
        assert_eq!(governing_rule("std::env::var"), Some("d2"));
        assert_eq!(governing_rule("std::thread::spawn"), None);
    }

    #[test]
    fn seed_patterns() {
        use crate::lexer::lex;
        use crate::parse::parse;
        let src = "
pub fn run_simulation_sharded() {}
pub fn run_fleet_traced() {}
pub fn run_replay_virtual() {}
pub fn helper() {}
pub struct PaldiaScheduler;
impl PaldiaScheduler { pub fn submit(&self) {} }
pub struct Other;
impl Other { pub fn submit(&self) {} }
";
        let ast = parse("crates/demo/src/lib.rs", &lex(src));
        let seeded: Vec<(&str, bool)> = ast
            .fns
            .iter()
            .map(|f| (f.name.as_str(), is_seed(f)))
            .collect();
        assert_eq!(
            seeded,
            vec![
                ("run_simulation_sharded", true),
                ("run_fleet_traced", true),
                ("run_replay_virtual", true),
                ("helper", false),
                ("submit", true),
                ("submit", false),
            ]
        );
    }
}
