//! Pass 2 of the boundary-graph analyzer: the crate graph.
//!
//! Parses every workspace `Cargo.toml` with a minimal hand-rolled TOML
//! reader (sections, `name = "…"`, dependency keys with line numbers — the
//! only shapes the workspace uses), binds each crate to its declared class
//! from the committed classification manifest, and enforces:
//!
//! * **b1** — no forbidden dependency edge, direct or transitive. The class
//!   matrix: deterministic-core → deterministic-core only; sim-facing →
//!   {deterministic-core, sim-facing}; shell → anything but tooling;
//!   tooling → {deterministic-core, tooling}. `[dev-dependencies]` are
//!   exempt: they never link into shipped simulation binaries.
//! * **b2** — no `pub use` that leaks a fenced symbol (`Instant`,
//!   `SystemTime`, `HashMap`, `HashSet`, `std::env`, `std::thread::spawn`)
//!   out of a deterministic-core or sim-facing crate, including renames,
//!   globs of fenced std modules, and re-export chains through other
//!   workspace crates.
//!
//! The manifest itself is checked both ways: every discovered crate must be
//! classified, and every entry must name a crate that exists.

use std::collections::BTreeMap;
use std::fs;
use std::io;
use std::path::Path;

use crate::parse::FileAst;
use crate::rules::Diagnostic;

/// Declared class of a workspace crate. Ordering is most → least
/// constrained and only matters for deterministic display.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Class {
    DeterministicCore,
    SimFacing,
    Shell,
    Tooling,
}

impl Class {
    pub fn parse(s: &str) -> Option<Class> {
        match s {
            "deterministic-core" => Some(Class::DeterministicCore),
            "sim-facing" => Some(Class::SimFacing),
            "shell" => Some(Class::Shell),
            "tooling" => Some(Class::Tooling),
            _ => None,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            Class::DeterministicCore => "deterministic-core",
            Class::SimFacing => "sim-facing",
            Class::Shell => "shell",
            Class::Tooling => "tooling",
        }
    }

    /// The b1 dependency matrix.
    pub fn may_depend_on(self, dep: Class) -> bool {
        match self {
            Class::DeterministicCore => dep == Class::DeterministicCore,
            Class::SimFacing => matches!(dep, Class::DeterministicCore | Class::SimFacing),
            Class::Shell => dep != Class::Tooling,
            Class::Tooling => matches!(dep, Class::DeterministicCore | Class::Tooling),
        }
    }

    fn allowed_deps(self) -> &'static str {
        match self {
            Class::DeterministicCore => "deterministic-core",
            Class::SimFacing => "deterministic-core and sim-facing",
            Class::Shell => "anything except tooling",
            Class::Tooling => "deterministic-core and tooling",
        }
    }
}

/// One workspace crate as discovered from its `Cargo.toml`.
#[derive(Debug)]
pub struct CrateInfo {
    /// Directory key: the name under `crates/`, or `root` for the facade.
    pub dir: String,
    /// `[package] name`.
    pub name: String,
    /// Manifest path relative to the scanned root.
    pub manifest_path: String,
    /// `[dependencies]` keys with their 1-based manifest line.
    pub deps: Vec<(String, usize)>,
    pub class: Option<Class>,
}

/// The workspace crate graph plus the classification manifest binding.
#[derive(Debug)]
pub struct CrateGraph {
    /// Crates keyed by directory name.
    pub crates: BTreeMap<String, CrateInfo>,
    /// Package name → directory key (both `paldia-sim` and `paldia_sim`).
    by_name: BTreeMap<String, String>,
    /// Path of the classification manifest, relative to the scanned root.
    pub manifest_rel: String,
}

impl CrateGraph {
    pub fn class_of(&self, dir: &str) -> Option<Class> {
        self.crates.get(dir).and_then(|c| c.class)
    }

    /// Resolve a dependency key or a code path segment to a crate dir.
    pub fn dir_of_name(&self, name: &str) -> Option<&str> {
        self.by_name.get(name).map(String::as_str)
    }

    /// `dir` plus everything reachable over `[dependencies]` edges.
    pub fn dep_closure(&self, dir: &str) -> Vec<String> {
        let mut seen = vec![dir.to_string()];
        let mut queue = vec![dir.to_string()];
        while let Some(cur) = queue.pop() {
            if let Some(info) = self.crates.get(&cur) {
                for (dep, _) in &info.deps {
                    if let Some(d) = self.dir_of_name(dep) {
                        if !seen.iter().any(|s| s == d) {
                            seen.push(d.to_string());
                            queue.push(d.to_string());
                        }
                    }
                }
            }
        }
        seen.sort();
        seen
    }
}

/// Discover every workspace crate, load the classification manifest, and
/// report manifest defects (unclassified crates, stale/unknown entries).
pub fn load(root: &Path) -> io::Result<(CrateGraph, Vec<Diagnostic>)> {
    let mut manifests = Vec::new();
    collect_manifests(root, root, &mut manifests)?;
    manifests.sort();

    let mut crates = BTreeMap::new();
    let mut by_name = BTreeMap::new();
    for rel in &manifests {
        let src = fs::read_to_string(root.join(rel))?;
        let Some((name, deps)) = parse_manifest(&src) else {
            continue; // virtual workspace manifest without a [package]
        };
        let dir = dir_key(rel);
        by_name.insert(name.clone(), dir.clone());
        by_name.insert(name.replace('-', "_"), dir.clone());
        crates.insert(
            dir.clone(),
            CrateInfo {
                dir,
                name,
                manifest_path: rel.clone(),
                deps,
                class: None,
            },
        );
    }

    let mut diags = Vec::new();
    let manifest_rel = classify(root, &mut crates, &mut diags)?;
    Ok((
        CrateGraph {
            crates,
            by_name,
            manifest_rel,
        },
        diags,
    ))
}

/// `crates/<k>/Cargo.toml` → `k`; the root manifest → `root`.
fn dir_key(rel: &str) -> String {
    if let Some(rest) = rel.strip_prefix("crates/") {
        if let Some(k) = rest.split('/').next() {
            return k.to_string();
        }
    }
    "root".to_string()
}

fn collect_manifests(root: &Path, dir: &Path, out: &mut Vec<String>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            // `fixtures` holds synthetic corpora that must not join the
            // real crate graph.
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            collect_manifests(root, &path, out)?;
        } else if name == "Cargo.toml" {
            let rel = path
                .strip_prefix(root)
                .unwrap_or(&path)
                .to_string_lossy()
                .replace('\\', "/");
            out.push(rel);
        }
    }
    Ok(())
}

/// Minimal TOML read: `[package] name`, `[dependencies]` keys + lines.
/// Returns None when the file has no `[package]` section (pure virtual
/// workspace manifest).
fn parse_manifest(src: &str) -> Option<(String, Vec<(String, usize)>)> {
    let mut section = String::new();
    let mut name = None;
    let mut deps = Vec::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            section = rest.trim_end_matches(']').trim().to_string();
            continue;
        }
        match section.as_str() {
            "package" => {
                if let Some(v) = line.strip_prefix("name") {
                    let v = v.trim_start();
                    if let Some(v) = v.strip_prefix('=') {
                        name = Some(v.trim().trim_matches('"').to_string());
                    }
                }
            }
            "dependencies" => {
                // `foo = { path = ".." }`, `foo.workspace = true`,
                // `foo = "1.0"` — the key ends at the first `=`, `.`, or
                // space.
                let key: String = line
                    .chars()
                    .take_while(|c| !matches!(c, '=' | '.' | ' ' | '\t'))
                    .collect();
                if !key.is_empty() {
                    deps.push((key, idx + 1));
                }
            }
            _ => {}
        }
    }
    name.map(|n| (n, deps))
}

/// Locate and apply the classification manifest. Emits b1 diagnostics for
/// missing manifests, unknown classes, unclassified crates, and stale
/// entries. Returns the manifest path used (relative).
fn classify(
    root: &Path,
    crates: &mut BTreeMap<String, CrateInfo>,
    diags: &mut Vec<Diagnostic>,
) -> io::Result<String> {
    // The real tree keeps the manifest next to the analyzer; synthetic
    // fixture corpora keep it at their own root.
    let candidates = ["crates/lint/classification.toml", "classification.toml"];
    let Some(rel) = candidates.iter().find(|c| root.join(c).is_file()) else {
        diags.push(Diagnostic {
            path: candidates[0].to_string(),
            line: 1,
            rule: "b1",
            message: "classification manifest not found; every workspace crate must be \
                      declared in crates/lint/classification.toml"
                .to_string(),
        });
        return Ok(candidates[0].to_string());
    };
    let rel = rel.to_string();
    let src = fs::read_to_string(root.join(&rel))?;

    let mut section = String::new();
    let mut seen: BTreeMap<String, usize> = BTreeMap::new();
    for (idx, raw) in src.lines().enumerate() {
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            section = rest.trim_end_matches(']').trim().to_string();
            continue;
        }
        if section != "classes" {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim().to_string();
        let value = value.trim().trim_matches('"');
        seen.insert(key.clone(), idx + 1);
        let Some(class) = Class::parse(value) else {
            diags.push(Diagnostic {
                path: rel.clone(),
                line: idx + 1,
                rule: "b1",
                message: format!(
                    "unknown class `{value}` for crate `{key}`; expected one of \
                     deterministic-core, sim-facing, shell, tooling"
                ),
            });
            continue;
        };
        if let Some(info) = crates.get_mut(&key) {
            info.class = Some(class);
        } else {
            diags.push(Diagnostic {
                path: rel.clone(),
                line: idx + 1,
                rule: "b1",
                message: format!(
                    "stale manifest entry: `{key}` is classified but no such workspace \
                     crate exists; remove the entry"
                ),
            });
        }
    }

    for info in crates.values() {
        if info.class.is_none() && !seen.contains_key(&info.dir) {
            diags.push(Diagnostic {
                path: rel.clone(),
                line: 1,
                rule: "b1",
                message: format!(
                    "crate `{}` ({}) is not classified; add it to {rel}",
                    info.dir, info.manifest_path
                ),
            });
        }
    }
    Ok(rel)
}

/// Rule b1: forbidden dependency edges, direct and transitive.
pub fn check_b1(graph: &CrateGraph) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    for info in graph.crates.values() {
        let Some(from) = info.class else { continue };
        // Direct edges, flagged at the offending manifest line.
        for (dep, line) in &info.deps {
            let Some(dep_dir) = graph.dir_of_name(dep) else {
                continue; // external dependency — none exist in this tree
            };
            let Some(to) = graph.class_of(dep_dir) else {
                continue; // unclassified: already diagnosed by the manifest check
            };
            if !from.may_depend_on(to) {
                diags.push(Diagnostic {
                    path: info.manifest_path.clone(),
                    line: *line,
                    rule: "b1",
                    message: format!(
                        "crate `{}` ({}) depends on `{dep_dir}` ({}); {} crates may \
                         depend only on {}",
                        info.dir,
                        from.name(),
                        to.name(),
                        from.name(),
                        from.allowed_deps(),
                    ),
                });
            }
        }
        // Transitive closure for deterministic-core: BFS with shortest
        // chains; direct edges are already flagged above, so only report
        // paths of length > 2.
        if from == Class::DeterministicCore {
            diags.extend(transitive_violations(graph, info));
        }
    }
    diags
}

fn transitive_violations(graph: &CrateGraph, start: &CrateInfo) -> Vec<Diagnostic> {
    let mut diags = Vec::new();
    // BFS with parent pointers; adjacency in sorted order for determinism.
    let mut parent: BTreeMap<String, String> = BTreeMap::new();
    let mut queue = std::collections::VecDeque::new();
    queue.push_back(start.dir.clone());
    while let Some(cur) = queue.pop_front() {
        let Some(info) = graph.crates.get(&cur) else {
            continue;
        };
        let mut next: Vec<&str> = info
            .deps
            .iter()
            .filter_map(|(d, _)| graph.dir_of_name(d))
            .collect();
        next.sort_unstable();
        next.dedup();
        for dep_dir in next {
            if dep_dir == start.dir || parent.contains_key(dep_dir) {
                continue;
            }
            parent.insert(dep_dir.to_string(), cur.clone());
            queue.push_back(dep_dir.to_string());
        }
    }
    let mut targets: Vec<(&String, Class)> = parent
        .keys()
        .filter_map(|d| graph.class_of(d).map(|c| (d, c)))
        .filter(|(_, c)| !Class::DeterministicCore.may_depend_on(*c))
        .collect();
    targets.sort();
    for (target, class) in targets {
        // Reconstruct the chain start → … → target.
        let mut chain = vec![target.clone()];
        while let Some(p) = parent.get(chain.last().expect("chain is non-empty")) {
            chain.push(p.clone());
            if *p == start.dir {
                break;
            }
        }
        chain.reverse();
        if chain.len() <= 2 {
            continue; // direct edge, already flagged
        }
        let first_hop = &chain[1];
        let line = start
            .deps
            .iter()
            .find(|(d, _)| graph.dir_of_name(d) == Some(first_hop.as_str()))
            .map(|(_, l)| *l)
            .unwrap_or(1);
        diags.push(Diagnostic {
            path: start.manifest_path.clone(),
            line,
            rule: "b1",
            message: format!(
                "crate `{}` (deterministic-core) transitively depends on `{target}` \
                 ({}) via `{}`",
                start.dir,
                class.name(),
                chain.join("` \u{2192} `"),
            ),
        });
    }
    diags
}

/// Fenced symbols for b2/reach: leaked type names and the std modules whose
/// glob re-export would leak them.
const FENCED_TYPES: &[(&str, &str)] = &[
    ("Instant", "std::time::Instant"),
    ("SystemTime", "std::time::SystemTime"),
    ("HashMap", "std::collections::HashMap"),
    ("HashSet", "std::collections::HashSet"),
];

const FENCED_MODULES: &[(&[&str], &str)] = &[
    (&["std", "time"], "std::time"),
    (&["std", "collections"], "std::collections"),
    (&["std", "env"], "std::env"),
    (&["std", "thread"], "std::thread"),
];

/// If `path` names a fenced symbol or module, return its canonical display.
pub fn fenced_target(path: &[String]) -> Option<String> {
    for (i, seg) in path.iter().enumerate() {
        if let Some((_, canon)) = FENCED_TYPES.iter().find(|(t, _)| t == seg) {
            let mut out = canon.to_string();
            for rest in &path[i + 1..] {
                out.push_str("::");
                out.push_str(rest);
            }
            return Some(out);
        }
    }
    let tail2 = path.len().checked_sub(2).map(|i| &path[i..]);
    if let Some([a, b]) = tail2.map(|t| [t[0].as_str(), t[1].as_str()]).as_ref() {
        match (*a, *b) {
            ("env", "var") | ("env", "var_os") => return Some(format!("std::env::{b}")),
            ("thread", "spawn") => return Some("std::thread::spawn".to_string()),
            ("std", "env") => return Some("std::env".to_string()),
            ("std", "thread") => return Some("std::thread".to_string()),
            _ => {}
        }
    }
    None
}

/// If `path` is a fenced std module (for glob re-exports), name it.
fn fenced_module(path: &[String]) -> Option<&'static str> {
    FENCED_MODULES
        .iter()
        .find(|(m, _)| path.len() == m.len() && path.iter().zip(m.iter()).all(|(a, b)| a == b))
        .map(|(_, canon)| *canon)
}

/// Rule b2: `pub use` re-exports that leak fenced symbols out of
/// deterministic-core / sim-facing crates, including chains through other
/// workspace crates.
pub fn check_b2(graph: &CrateGraph, asts: &[FileAst]) -> Vec<Diagnostic> {
    // Export map over the whole workspace: (crate dir, bound name) → target
    // path as written in that crate. Used to resolve re-export chains.
    let mut exports: BTreeMap<(String, String), Vec<String>> = BTreeMap::new();
    for ast in asts {
        for u in &ast.uses {
            if !u.is_pub {
                continue;
            }
            if let Some(bound) = u.binding() {
                exports
                    .entry((ast.krate.clone(), bound.to_string()))
                    .or_insert_with(|| u.path.clone());
            }
        }
    }

    let mut diags = Vec::new();
    for ast in asts {
        let Some(class) = graph.class_of(&ast.krate) else {
            continue;
        };
        if !matches!(class, Class::DeterministicCore | Class::SimFacing) {
            continue;
        }
        for u in &ast.uses {
            if !u.is_pub {
                continue;
            }
            if u.glob {
                if let Some(canon) = fenced_module(&u.path) {
                    diags.push(Diagnostic {
                        path: ast.path.clone(),
                        line: u.line,
                        rule: "b2",
                        message: format!(
                            "`{}` re-exports all of fenced `{canon}` from {} crate \
                             `{}`",
                            u.rendered(),
                            class.name(),
                            ast.krate,
                        ),
                    });
                }
                continue;
            }
            let (resolved, via) = resolve_chain(graph, &exports, &ast.krate, &u.path);
            if let Some(canon) = fenced_target(&resolved) {
                let via_note = via.map(|v| format!(" (via `{v}`)")).unwrap_or_default();
                diags.push(Diagnostic {
                    path: ast.path.clone(),
                    line: u.line,
                    rule: "b2",
                    message: format!(
                        "`{}` re-exports fenced `{canon}` from {} crate `{}`{via_note}",
                        u.rendered(),
                        class.name(),
                        ast.krate,
                    ),
                });
            }
        }
    }
    diags
}

/// Follow a use path through workspace re-export chains: while the first
/// segment names a workspace crate whose exports bind the second segment,
/// splice in that crate's target path. Returns the resolved path and the
/// last crate hopped through, if any.
pub fn resolve_chain<'a>(
    graph: &'a CrateGraph,
    exports: &BTreeMap<(String, String), Vec<String>>,
    home: &str,
    path: &[String],
) -> (Vec<String>, Option<&'a str>) {
    let mut cur: Vec<String> = path.to_vec();
    let mut via = None;
    for _ in 0..8 {
        let Some(first) = cur.first() else { break };
        if first == "crate" || first == "self" || first == "super" {
            // Same-crate re-export: retarget the lookup at `home`.
            let Some(second) = cur.get(1) else { break };
            let Some(target) = exports.get(&(home.to_string(), second.clone())) else {
                break;
            };
            let mut next = target.clone();
            next.extend(cur.iter().skip(2).cloned());
            cur = next;
            continue;
        }
        let Some(dir) = graph.dir_of_name(first) else {
            break;
        };
        let Some(second) = cur.get(1) else { break };
        let Some(target) = exports.get(&(dir.to_string(), second.clone())) else {
            break;
        };
        via = Some(&graph.crates[dir].dir[..]);
        let mut next = target.clone();
        next.extend(cur.iter().skip(2).cloned());
        cur = next;
    }
    (cur, via)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_matrix() {
        use Class::*;
        assert!(DeterministicCore.may_depend_on(DeterministicCore));
        assert!(!DeterministicCore.may_depend_on(SimFacing));
        assert!(!DeterministicCore.may_depend_on(Shell));
        assert!(!DeterministicCore.may_depend_on(Tooling));
        assert!(SimFacing.may_depend_on(DeterministicCore));
        assert!(SimFacing.may_depend_on(SimFacing));
        assert!(!SimFacing.may_depend_on(Shell));
        assert!(Shell.may_depend_on(SimFacing));
        assert!(Shell.may_depend_on(Shell));
        assert!(!Shell.may_depend_on(Tooling));
        assert!(Tooling.may_depend_on(DeterministicCore));
        assert!(!Tooling.may_depend_on(SimFacing));
    }

    #[test]
    fn class_names_round_trip() {
        for c in [
            Class::DeterministicCore,
            Class::SimFacing,
            Class::Shell,
            Class::Tooling,
        ] {
            assert_eq!(Class::parse(c.name()), Some(c));
        }
        assert_eq!(Class::parse("bogus"), None);
    }

    #[test]
    fn manifest_parsing_handles_workspace_and_table_deps() {
        let src = "\
[package]
name = \"paldia-demo\"
version = \"0.1.0\"

[dependencies]
paldia-sim.workspace = true
relay = { path = \"../relay\" }
serde = \"1.0\"

[dev-dependencies]
paldia-core.workspace = true
";
        let (name, deps) = parse_manifest(src).expect("has a [package] section");
        assert_eq!(name, "paldia-demo");
        assert_eq!(
            deps,
            vec![
                ("paldia-sim".to_string(), 6),
                ("relay".to_string(), 7),
                ("serde".to_string(), 8),
            ]
        );
    }

    #[test]
    fn virtual_workspace_manifest_is_skipped() {
        assert!(parse_manifest("[workspace]\nmembers = [\"crates/*\"]\n").is_none());
    }

    #[test]
    fn workspace_dependencies_section_is_not_misread() {
        let src = "\
[package]
name = \"root\"

[workspace.dependencies]
paldia-lint = { path = \"crates/lint\" }
";
        let (_, deps) = parse_manifest(src).expect("package section present");
        assert!(
            deps.is_empty(),
            "only exact [dependencies] counts: {deps:?}"
        );
    }

    #[test]
    fn fenced_targets() {
        let p = |s: &str| -> Vec<String> { s.split("::").map(str::to_string).collect() };
        assert_eq!(
            fenced_target(&p("std::time::Instant")).as_deref(),
            Some("std::time::Instant")
        );
        assert_eq!(
            fenced_target(&p("Instant::now")).as_deref(),
            Some("std::time::Instant::now")
        );
        assert_eq!(
            fenced_target(&p("std::env::var")).as_deref(),
            Some("std::env::var")
        );
        assert_eq!(
            fenced_target(&p("std::thread::spawn")).as_deref(),
            Some("std::thread::spawn")
        );
        assert_eq!(fenced_target(&p("std::time::Duration")), None);
        assert_eq!(fenced_target(&p("std::collections::BTreeMap")), None);
        assert_eq!(
            fenced_target(&p("thread::spawn")).as_deref(),
            Some("std::thread::spawn")
        );
    }
}
