//! A minimal hand-rolled Rust lexer: just enough token structure for the
//! lint rules, with comment/string contents kept out of the token stream so
//! prose mentioning `HashMap` or `unwrap()` never trips a rule.
//!
//! The lexer additionally records:
//!
//! * `// lint:allow(rule, …)` escape hatches, with the line they appear on
//!   (a hatch suppresses matching diagnostics on its own line and the line
//!   directly below, so it works both trailing and standalone);
//! * `#[cfg(test)]` regions (the attribute plus the brace-balanced item it
//!   gates), which every rule skips — the determinism contract binds
//!   production code, while test code is covered by the dynamic replay
//!   tests instead.

/// Token kinds the rules care about. Anything else (attributes' punctuation,
/// braces, …) comes through as [`Tok::Op`] and is mostly ignored.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Tok {
    /// Identifier or keyword (`HashMap`, `as`, `unwrap`, …).
    Ident(String),
    /// Integer literal (`42`, `0xff`, `1_000u64`).
    Int,
    /// Float literal (`1.0`, `2e9`, `3f64`).
    Float,
    /// String literal, with its cooked value (escapes resolved best-effort).
    Str(String),
    /// Any single punctuation character.
    Op(char),
}

/// One token with its source line (1-based).
#[derive(Clone, Debug)]
pub struct Token {
    pub tok: Tok,
    pub line: usize,
}

/// The lexed view of one source file.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Token>,
    /// `(line, rule)` escape hatches parsed from `// lint:allow(…)`.
    pub allows: Vec<(usize, String)>,
    /// Token-index ranges `[start, end)` lying inside `#[cfg(test)]` items.
    pub test_ranges: Vec<(usize, usize)>,
}

impl Lexed {
    /// True if token index `i` falls inside a `#[cfg(test)]` region.
    pub fn in_test_code(&self, i: usize) -> bool {
        self.test_ranges.iter().any(|&(s, e)| s <= i && i < e)
    }

    /// True if `rule` is hatch-allowed for a diagnostic on `line`.
    pub fn allowed(&self, line: usize, rule: &str) -> bool {
        self.allows
            .iter()
            .any(|(l, r)| r == rule && (*l == line || *l + 1 == line))
    }
}

/// Parse `lint:allow(d1, r2)` comment bodies into rule ids. Only a plain
/// `//` comment whose content *starts with* `lint:allow(` counts — doc
/// comments (`///`, `//!`) and prose that merely mentions the syntax never
/// register hatches (they would show up as stale in the hatch audit).
fn parse_allow(comment: &str, line: usize, out: &mut Vec<(usize, String)>) {
    let rest = comment.strip_prefix("//").unwrap_or(comment);
    if rest.starts_with('/') || rest.starts_with('!') {
        return;
    }
    let Some(rest) = rest.trim_start().strip_prefix("lint:allow(") else {
        return;
    };
    let Some(close) = rest.find(')') else {
        return;
    };
    for rule in rest[..close].split(',') {
        let rule = rule.trim();
        // Only plausible rule ids count — prose like `lint:allow(<rule>)`
        // in doc comments must not become a phantom hatch.
        if !rule.is_empty() && rule.bytes().all(|b| b.is_ascii_alphanumeric() || b == b'-') {
            out.push((line, rule.to_ascii_lowercase()));
        }
    }
}

/// Lex `src` into tokens, escape hatches, and `#[cfg(test)]` regions.
pub fn lex(src: &str) -> Lexed {
    let bytes = src.as_bytes();
    let mut out = Lexed::default();
    let mut i = 0usize;
    let mut line = 1usize;

    macro_rules! bump_lines {
        ($s:expr) => {
            line += $s.bytes().filter(|&b| b == b'\n').count()
        };
    }

    while i < bytes.len() {
        let c = src[i..]
            .chars()
            .next()
            .expect("invariant: i stays on a char boundary");
        match c {
            '\n' => {
                line += 1;
                i += 1;
            }
            c if c.is_whitespace() => {
                i += 1;
            }
            '/' if bytes.get(i + 1) == Some(&b'/') => {
                // Line comment: scan to end of line, harvest hatches.
                let end = src[i..].find('\n').map_or(bytes.len(), |p| i + p);
                parse_allow(&src[i..end], line, &mut out.allows);
                i = end;
            }
            '/' if bytes.get(i + 1) == Some(&b'*') => {
                // Block comment with Rust-style nesting.
                let mut depth = 1usize;
                let start = i;
                i += 2;
                while i < bytes.len() && depth > 0 {
                    if bytes[i] == b'/' && bytes.get(i + 1) == Some(&b'*') {
                        depth += 1;
                        i += 2;
                    } else if bytes[i] == b'*' && bytes.get(i + 1) == Some(&b'/') {
                        depth -= 1;
                        i += 2;
                    } else {
                        i += 1;
                    }
                }
                bump_lines!(&src[start..i]);
            }
            'r' | 'b' if is_raw_string_start(bytes, i) => {
                let (consumed, value) = scan_raw_string(&src[i..]);
                out.tokens.push(Token {
                    tok: Tok::Str(value),
                    line,
                });
                bump_lines!(&src[i..i + consumed]);
                i += consumed;
            }
            '"' => {
                let (consumed, value) = scan_string(&src[i..]);
                out.tokens.push(Token {
                    tok: Tok::Str(value),
                    line,
                });
                bump_lines!(&src[i..i + consumed]);
                i += consumed;
            }
            '\'' => {
                // Char literal or lifetime. `'a` (lifetime) has no closing
                // quote right after one scalar; `'x'`/`'\n'` do.
                let consumed = scan_char_or_lifetime(bytes, i);
                i += consumed;
            }
            c if c.is_ascii_digit() => {
                let (consumed, is_float) = scan_number(bytes, i);
                out.tokens.push(Token {
                    tok: if is_float { Tok::Float } else { Tok::Int },
                    line,
                });
                i += consumed;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                while let Some(ch) = src[i..].chars().next() {
                    if ch.is_alphanumeric() || ch == '_' {
                        i += ch.len_utf8();
                    } else {
                        break;
                    }
                }
                out.tokens.push(Token {
                    tok: Tok::Ident(src[start..i].to_string()),
                    line,
                });
            }
            c => {
                out.tokens.push(Token {
                    tok: Tok::Op(c),
                    line,
                });
                i += c.len_utf8();
            }
        }
    }

    mark_test_regions(&mut out);
    out
}

/// `r"…"`, `r#"…"#`, `br"…"`, `b"…"` starts.
fn is_raw_string_start(bytes: &[u8], i: usize) -> bool {
    let mut j = i;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        while bytes.get(j) == Some(&b'#') {
            j += 1;
        }
        return bytes.get(j) == Some(&b'"');
    }
    // Plain byte string `b"…"`.
    bytes[i] == b'b' && bytes.get(i + 1) == Some(&b'"')
}

/// Scan a raw (or byte) string starting at offset 0; returns (len, value).
fn scan_raw_string(s: &str) -> (usize, String) {
    let bytes = s.as_bytes();
    let mut j = 0usize;
    if bytes[j] == b'b' {
        j += 1;
    }
    if bytes.get(j) == Some(&b'r') {
        j += 1;
        let mut hashes = 0usize;
        while bytes.get(j) == Some(&b'#') {
            hashes += 1;
            j += 1;
        }
        j += 1; // opening quote
        let body_start = j;
        let closer: String = format!("\"{}", "#".repeat(hashes));
        match s[j..].find(&closer) {
            Some(p) => (j + p + closer.len(), s[body_start..j + p].to_string()),
            None => (s.len(), s[body_start..].to_string()),
        }
    } else {
        // b"…": reuse the cooked scanner past the `b`.
        let (n, v) = scan_string(&s[1..]);
        (n + 1, v)
    }
}

/// Scan a cooked string literal starting at the opening quote; returns
/// (len, value) with common escapes resolved.
fn scan_string(s: &str) -> (usize, String) {
    let bytes = s.as_bytes();
    let mut value = String::new();
    let mut j = 1usize; // past the opening quote
    while j < bytes.len() {
        match bytes[j] {
            b'"' => return (j + 1, value),
            b'\\' => {
                match bytes.get(j + 1) {
                    Some(b'n') => value.push('\n'),
                    Some(b't') => value.push('\t'),
                    Some(b'"') => value.push('"'),
                    Some(b'\\') => value.push('\\'),
                    Some(&other) => value.push(other as char),
                    None => {}
                }
                j += 2;
            }
            b => {
                value.push(b as char);
                j += 1;
            }
        }
    }
    (s.len(), value)
}

/// Char literal (`'x'`, `'\n'`) or lifetime (`'a`): returns bytes consumed.
fn scan_char_or_lifetime(bytes: &[u8], i: usize) -> usize {
    // Escaped char literal. The escaped character itself is skipped before
    // looking for the closing quote, so `'\''` consumes all four bytes and
    // `'\\'` does not end early — stopping at the escaped quote used to
    // leave a stray `'` that desynced the string masker on the next `"`.
    if bytes.get(i + 1) == Some(&b'\\') {
        let mut j = i + 3;
        while j < bytes.len() && bytes[j] != b'\'' {
            j += 1;
        }
        if j < bytes.len() {
            return j + 1 - i;
        }
        return bytes.len() - i;
    }
    // `'x'` — closing quote two ahead.
    if bytes.get(i + 2) == Some(&b'\'') {
        return 3;
    }
    // Lifetime: consume the quote; the identifier lexes as a normal ident.
    1
}

/// Number literal starting at `i`; returns (len, is_float). A `.` only makes
/// the literal a float when followed by a digit (so `1..4` and `2.pow(…)`
/// stay integers), and `e`/`E` exponents or f32/f64 suffixes also do.
fn scan_number(bytes: &[u8], i: usize) -> (usize, bool) {
    let mut j = i;
    let mut is_float = false;
    // Hex/octal/binary prefix: integer, consume greedily.
    if bytes[j] == b'0'
        && matches!(
            bytes.get(j + 1),
            Some(b'x' | b'X' | b'o' | b'O' | b'b' | b'B')
        )
    {
        j += 2;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        return (j - i, false);
    }
    while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
        j += 1;
    }
    if bytes.get(j) == Some(&b'.') && bytes.get(j + 1).is_some_and(|b| b.is_ascii_digit()) {
        is_float = true;
        j += 1;
        while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
            j += 1;
        }
    }
    if matches!(bytes.get(j), Some(b'e' | b'E'))
        && bytes
            .get(j + 1)
            .is_some_and(|&b| b.is_ascii_digit() || b == b'+' || b == b'-')
    {
        is_float = true;
        j += 1;
        if matches!(bytes.get(j), Some(b'+' | b'-')) {
            j += 1;
        }
        while j < bytes.len() && (bytes[j].is_ascii_digit() || bytes[j] == b'_') {
            j += 1;
        }
    }
    // Type suffix (`u64`, `f64`, …).
    if bytes.get(j).is_some_and(|b| b.is_ascii_alphabetic()) {
        let suffix_start = j;
        while j < bytes.len() && (bytes[j].is_ascii_alphanumeric() || bytes[j] == b'_') {
            j += 1;
        }
        if bytes[suffix_start] == b'f' {
            is_float = true;
        }
    }
    (j - i, is_float)
}

/// Find `#[cfg(test)]` attributes and mark the token span of the item they
/// gate (through the matching close brace, or to the trailing `;` for
/// brace-less items).
fn mark_test_regions(lexed: &mut Lexed) {
    let toks = &lexed.tokens;
    let mut i = 0usize;
    while i + 6 < toks.len() {
        let is_cfg_test = matches!(&toks[i].tok, Tok::Op('#'))
            && matches!(&toks[i + 1].tok, Tok::Op('['))
            && matches!(&toks[i + 2].tok, Tok::Ident(s) if s == "cfg")
            && matches!(&toks[i + 3].tok, Tok::Op('('))
            && matches!(&toks[i + 4].tok, Tok::Ident(s) if s == "test")
            && matches!(&toks[i + 5].tok, Tok::Op(')'))
            && matches!(&toks[i + 6].tok, Tok::Op(']'));
        if !is_cfg_test {
            i += 1;
            continue;
        }
        // Scan forward to the gated item's opening brace (or `;`).
        let mut j = i + 7;
        let mut end = toks.len();
        while j < toks.len() {
            match &toks[j].tok {
                Tok::Op('{') => {
                    let mut depth = 1usize;
                    let mut k = j + 1;
                    while k < toks.len() && depth > 0 {
                        match &toks[k].tok {
                            Tok::Op('{') => depth += 1,
                            Tok::Op('}') => depth -= 1,
                            _ => {}
                        }
                        k += 1;
                    }
                    end = k;
                    break;
                }
                Tok::Op(';') => {
                    end = j + 1;
                    break;
                }
                _ => j += 1,
            }
        }
        lexed.test_ranges.push((i, end));
        i = end;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Ident(s) => Some(s.clone()),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_produce_no_idents() {
        let src = r##"
            // HashMap in a comment
            /* HashMap /* nested */ still comment */
            let s = "HashMap in a string";
            let r = r#"HashMap raw"#;
        "##;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"let".to_string()));
    }

    #[test]
    fn float_vs_int_literals() {
        let kinds: Vec<_> = lex("1.5 2 3e9 4f64 0x1f 1..4")
            .tokens
            .into_iter()
            .map(|t| t.tok)
            .collect();
        assert_eq!(kinds[0], Tok::Float);
        assert_eq!(kinds[1], Tok::Int);
        assert_eq!(kinds[2], Tok::Float);
        assert_eq!(kinds[3], Tok::Float);
        assert_eq!(kinds[4], Tok::Int);
        // `1..4` lexes as Int, '.', '.', Int — not a float.
        assert_eq!(kinds[5], Tok::Int);
    }

    #[test]
    fn allow_hatches_are_recorded() {
        let src = "let a = 1; // lint:allow(d1, r2)\nlet b = 2;\n// lint:allow(d3)\nlet c;";
        let lexed = lex(src);
        assert!(lexed.allowed(1, "d1"));
        assert!(lexed.allowed(2, "d1"), "hatch covers the next line too");
        assert!(!lexed.allowed(3, "d1"));
        assert!(lexed.allowed(4, "d3"));
    }

    #[test]
    fn cfg_test_regions_cover_the_gated_item() {
        let src =
            "fn prod() {}\n#[cfg(test)]\nmod tests {\n  fn t() { x.unwrap(); }\n}\nfn after() {}";
        let lexed = lex(src);
        let unwrap_idx = lexed
            .tokens
            .iter()
            .position(|t| t.tok == Tok::Ident("unwrap".into()))
            .expect("invariant: fixture contains unwrap");
        assert!(lexed.in_test_code(unwrap_idx));
        let after_idx = lexed
            .tokens
            .iter()
            .position(|t| t.tok == Tok::Ident("after".into()))
            .expect("invariant: fixture contains after");
        assert!(!lexed.in_test_code(after_idx));
    }

    #[test]
    fn string_values_survive_escapes() {
        let lexed = lex(r#"x.expect("invariant: a \"quoted\" thing")"#);
        let s = lexed
            .tokens
            .iter()
            .find_map(|t| match &t.tok {
                Tok::Str(s) => Some(s.clone()),
                _ => None,
            })
            .expect("invariant: fixture contains a string");
        assert_eq!(s, "invariant: a \"quoted\" thing");
    }

    #[test]
    fn lifetimes_and_chars_do_not_derail() {
        let ids = idents("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        assert!(ids.contains(&"str".to_string()));
        assert!(ids.contains(&"a".to_string()));
    }

    #[test]
    fn escaped_quote_char_consumes_the_whole_literal() {
        // `'\''` then a real string: the masker must not treat the string's
        // opening quote as part of a char literal (the old scan stopped at
        // the escaped quote and left a stray `'` behind).
        let ids = idents(r#"let q = '\''; let s = "HashMap"; let live = HashMap::new();"#);
        assert_eq!(
            ids.iter().filter(|s| s.as_str() == "HashMap").count(),
            1,
            "only the live mention survives masking: {ids:?}"
        );
        assert!(ids.contains(&"live".to_string()));
    }

    #[test]
    fn escaped_backslash_char_is_not_an_open_quote() {
        let ids = idents(r#"let b = '\\'; let m = HashMap::new();"#);
        assert!(ids.contains(&"HashMap".to_string()), "{ids:?}");
    }

    #[test]
    fn quote_chars_in_arrays_do_not_desync() {
        let src = r#"let quotes = ['\'', '"']; let m = HashMap::new(); let s = "HashMap";"#;
        let ids = idents(src);
        assert_eq!(
            ids.iter().filter(|s| s.as_str() == "HashMap").count(),
            1,
            "{ids:?}"
        );
    }

    #[test]
    fn byte_and_raw_byte_strings_are_masked() {
        let src = r###"
            let a = b"HashMap inside bytes";
            let b = br#"HashSet::new() and "SystemTime" too"#;
            let c = br##"nested r#"Instant"# raw"##;
            let live = HashSet::new();
        "###;
        let ids = idents(src);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(!ids.contains(&"SystemTime".to_string()), "{ids:?}");
        assert!(!ids.contains(&"Instant".to_string()), "{ids:?}");
        assert_eq!(
            ids.iter().filter(|s| s.as_str() == "HashSet").count(),
            1,
            "the live HashSet mention survives: {ids:?}"
        );
    }

    #[test]
    fn byte_string_with_escaped_quote_stays_masked() {
        let ids = idents(r#"let a = b"a \" quoted HashMap \" mention"; done();"#);
        assert!(!ids.contains(&"HashMap".to_string()), "{ids:?}");
        assert!(ids.contains(&"done".to_string()));
    }

    #[test]
    fn implausible_hatch_rule_ids_are_ignored() {
        // Doc prose describing the hatch syntax must not register hatches.
        let lexed = lex("// a `lint:allow(<rule>)` comment\nlet x = 1;");
        assert!(lexed.allows.is_empty(), "{:?}", lexed.allows);
        let lexed = lex("// lint:allow(stale-allow)\nlet x = 1;");
        assert_eq!(lexed.allows.len(), 1, "hyphenated ids are plausible");
    }
}
