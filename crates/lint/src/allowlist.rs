//! The shipped allowlist: per-rule exemptions for whole files, each with a
//! recorded justification. Policy (see `crates/lint/README.md`):
//!
//! - `d1` and `d3` MUST stay empty — iteration-order and float-ordering
//!   nondeterminism have no acceptable production exemptions; fix the code.
//! - `b1`, `b2`, and `reach` MUST stay empty too — a boundary violation is
//!   fixed in the dependency graph or the re-export, never waved through
//!   (an individual fenced *call site* may carry an inline `reach` hatch
//!   after review; whole files may not).
//! - `d2`, `r1`, `r2` entries are allowed but each must carry a concrete
//!   justification explaining why the site cannot affect replay or safety.
//! - Prefer the inline `// lint:allow(<rule>)` hatch for single sites; a
//!   table entry is for files where the pattern is pervasive and reviewed.
//! - Entries that stop suppressing anything are flagged by the
//!   `stale-allow` audit and must be pruned.

/// One allowlist entry: rule id, path suffix it applies to, justification.
pub struct Allow {
    pub rule: &'static str,
    /// Matched against the end of the relative path (`/`-separated).
    pub path_suffix: &'static str,
    pub why: &'static str,
}

/// The shipped allowlist. Keep this SHORT; every entry is review surface.
pub const ALLOWLIST: &[Allow] = &[Allow {
    rule: "d2",
    path_suffix: "crates/sim/src/pool.rs",
    why: "PALDIA_JOBS env read only caps the worker-thread count; results \
          are bit-identical at any job count (crates/experiments/tests/\
          parallel_determinism.rs proves it), so the read cannot affect \
          replay.",
}];

/// True when `path` is exempt from `rule` via the shipped table.
pub fn allowed(rule: &str, path: &str) -> bool {
    entry_index(rule, path).is_some()
}

/// Index of the entry exempting `path` from `rule`, if one does. The driver
/// records fired indices so the stale-allow audit can flag dead entries.
pub fn entry_index(rule: &str, path: &str) -> Option<usize> {
    ALLOWLIST
        .iter()
        .position(|a| a.rule == rule && path.ends_with(a.path_suffix))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d1_and_d3_allowlists_are_empty() {
        assert!(
            !ALLOWLIST.iter().any(|a| a.rule == "d1" || a.rule == "d3"),
            "d1/d3 must ship with an empty allowlist"
        );
    }

    #[test]
    fn boundary_allowlists_are_empty() {
        for a in ALLOWLIST {
            assert!(
                !crate::rules::BOUNDARY_RULES.contains(&a.rule),
                "{}: boundary rules (b1/b2/reach/stale-allow) must ship with an \
                 empty allowlist; fix the graph instead",
                a.rule
            );
        }
    }

    #[test]
    fn every_entry_has_a_justification() {
        for a in ALLOWLIST {
            assert!(
                a.why.len() > 20,
                "entry {}:{} needs a real why",
                a.rule,
                a.path_suffix
            );
        }
    }

    #[test]
    fn suffix_matching() {
        assert!(allowed("d2", "crates/sim/src/pool.rs"));
        assert!(!allowed("d2", "crates/core/src/framework.rs"));
        assert!(!allowed("r1", "crates/sim/src/pool.rs"));
    }
}
