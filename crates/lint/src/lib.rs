//! paldia-lint: a determinism & robustness static-analysis pass for the
//! Paldia workspace.
//!
//! The simulation's credibility rests on bit-identical replay (see
//! DESIGN.md, "Determinism contract"): every experiment must produce the
//! same `BENCH_repro.json` on every run, machine, and thread count. This
//! crate makes that contract machine-checked. It is a hand-rolled
//! lexer/scanner with zero external dependencies — the same vendored-shim
//! style as `crates/proptest` and `crates/criterion` — so it runs in the
//! offline build container and never drifts with external lint frameworks.
//!
//! Rules (full table in `crates/lint/README.md`):
//!
//! | id | binds to            | forbids                                     |
//! |----|---------------------|---------------------------------------------|
//! | d1 | sim-facing crates   | `HashMap`/`HashSet` (iteration order)        |
//! | d2 | deterministic crates| `Instant`/`SystemTime`/`env::var`            |
//! | d3 | sim-facing crates   | float `==`/`!=`, `partial_cmp().unwrap()`    |
//! | r1 | library crates      | bare `unwrap()`, weak `expect`, `panic!`     |
//! | r2 | event/time files    | narrowing `as` casts                         |
//!
//! Escape hatches: a `// lint:allow(<rule>)` comment on the offending line
//! (or the line above) suppresses one site; `src/allowlist.rs` holds the
//! reviewed per-file table. `#[cfg(test)]` items, `/tests/`, `/benches/`,
//! `/examples/`, `/bin/` paths, and the CLI facade are out of scope.

pub mod allowlist;
pub mod lexer;
pub mod rules;

pub use rules::Diagnostic;

use std::fs;
use std::path::{Path, PathBuf};

/// Lint every `.rs` file under `root`, returning diagnostics not covered by
/// the shipped allowlist, sorted by (path, line, rule).
pub fn run(root: &Path) -> std::io::Result<Vec<Diagnostic>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();

    let mut out = Vec::new();
    for rel in files {
        let rel_str = rel
            .to_str()
            .expect("invariant: collected paths are valid UTF-8")
            .replace('\\', "/");
        if rules::exempt_path(&rel_str) {
            continue;
        }
        let src = fs::read_to_string(root.join(&rel))?;
        let lexed = lexer::lex(&src);
        for d in rules::check_file(&rel_str, &lexed) {
            if !allowlist::allowed(d.rule, &d.path) {
                out.push(d);
            }
        }
    }
    out.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    Ok(out)
}

/// Recursively gather `.rs` files as paths relative to `root`, skipping
/// build output, VCS metadata, and the lint crate's own fixture corpus.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> std::io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') || name == "fixtures" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("invariant: walked paths live under root")
                .to_path_buf();
            out.push(rel);
        }
    }
    Ok(())
}

/// Render diagnostics as plain text, one `file:line:rule: message` per line.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut s = String::new();
    for d in diags {
        s.push_str(&d.render());
        s.push('\n');
    }
    s
}

/// Render diagnostics as a JSON array (hand-rolled; no serde in this crate).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut s = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.path),
            d.line,
            d.rule,
            json_escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        s.push('\n');
    }
    s.push_str("]\n");
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_shape() {
        let diags = vec![Diagnostic {
            path: "crates/x/src/a.rs".into(),
            line: 3,
            rule: "d1",
            message: "msg".into(),
        }];
        let j = render_json(&diags);
        assert!(j.contains("\"file\": \"crates/x/src/a.rs\""));
        assert!(j.contains("\"line\": 3"));
        assert!(j.starts_with('[') && j.ends_with("]\n"));
        assert_eq!(render_json(&[]), "[]\n");
    }
}
