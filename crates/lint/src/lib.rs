//! paldia-lint: determinism & robustness static analysis for the Paldia
//! workspace.
//!
//! The simulation's credibility rests on bit-identical replay (see
//! DESIGN.md, "Determinism contract"): every experiment must produce the
//! same `BENCH_repro.json` on every run, machine, and thread count. This
//! crate makes that contract machine-checked, with zero external
//! dependencies — the same vendored-shim style as `crates/proptest` and
//! `crates/criterion` — so it runs in the offline build container and
//! never drifts with external lint frameworks.
//!
//! Three layers (DESIGN.md §13; full rule table in `crates/lint/README.md`):
//!
//! 1. **Token rules** over each file's masked token stream:
//!
//!    | id | binds to            | forbids                                   |
//!    |----|---------------------|-------------------------------------------|
//!    | d1 | sim-facing crates   | `HashMap`/`HashSet` (iteration order)      |
//!    | d2 | deterministic crates| `Instant`/`SystemTime`/`env::var`          |
//!    | d3 | sim-facing crates   | float `==`/`!=`, `partial_cmp().unwrap()`  |
//!    | r1 | library crates      | bare `unwrap()`, weak `expect`, `panic!`   |
//!    | r2 | event/time files    | narrowing `as` casts                       |
//!
//! 2. **Crate-graph rules** over every workspace `Cargo.toml` plus the
//!    committed classification manifest (`crates/lint/classification.toml`):
//!    `b1` forbids dependency edges that violate the class matrix (direct
//!    or transitive), `b2` forbids `pub use` re-exports that leak fenced
//!    symbols (`Instant`, `SystemTime`, `HashMap`, `HashSet`, `std::env`,
//!    `std::thread::spawn`) out of deterministic-core/sim-facing crates.
//!
//! 3. **Reachability** (`reach`): an approximate interprocedural call graph
//!    seeded at `run_simulation*`/`run_fleet*`/`PaldiaScheduler` methods;
//!    any path to a fenced symbol is reported as a call-chain narrative.
//!
//! Escape hatches: a `// lint:allow(<rule>)` comment on the offending line
//! (or the line above) suppresses one site; `src/allowlist.rs` holds the
//! reviewed per-file table. Hatches and entries that suppress nothing are
//! themselves flagged (`stale-allow`). `#[cfg(test)]` items, `/tests/`,
//! `/benches/`, `/examples/`, `/bin/` paths, and the CLI facade are out of
//! token-rule scope; the graph passes still see every crate's manifest.

pub mod allowlist;
pub mod graph;
pub mod lexer;
pub mod parse;
pub mod reach;
pub mod rules;

pub use rules::Diagnostic;

use std::collections::{BTreeMap, BTreeSet};
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The result of a full workspace analysis.
#[derive(Debug)]
pub struct Report {
    /// All surviving diagnostics, sorted by (path, line, rule).
    pub diagnostics: Vec<Diagnostic>,
    /// Number of non-exempt `.rs` files lexed, parsed, and checked.
    pub files_scanned: usize,
    /// Every discovered workspace crate with its declared class
    /// (`"unclassified"` when the manifest misses it), sorted by dir.
    pub crates: Vec<(String, String)>,
}

/// One scanned file: lexed tokens, parsed items, raw token diagnostics.
struct Scanned {
    rel: String,
    lexed: lexer::Lexed,
    ast: Option<parse::FileAst>,
    raw: Vec<Diagnostic>,
}

/// Lint every `.rs` file under `root`, returning diagnostics not covered by
/// a hatch or the shipped allowlist, sorted by (path, line, rule).
/// Equivalent to [`analyze`] without the summary fields.
pub fn run(root: &Path) -> io::Result<Vec<Diagnostic>> {
    analyze(root).map(|r| r.diagnostics)
}

/// Parse every non-exempt `.rs` file under `root` into its item-level
/// structure, with no rule checks. The workspace-clean self-test uses this
/// to probe the call graph directly.
pub fn parse_workspace(root: &Path) -> io::Result<Vec<parse::FileAst>> {
    let rels = scannable_files(root)?;
    let asts: Vec<io::Result<parse::FileAst>> = paldia_core::pool::run_indexed(rels.len(), |i| {
        let src = fs::read_to_string(root.join(&rels[i]))?;
        Ok(parse::parse(&rels[i], &lexer::lex(&src)))
    });
    asts.into_iter().collect()
}

/// Sorted relative paths of every `.rs` file in token-rule scope.
fn scannable_files(root: &Path) -> io::Result<Vec<String>> {
    let mut files = Vec::new();
    collect_rs_files(root, root, &mut files)?;
    files.sort();
    Ok(files
        .iter()
        .map(|rel| {
            rel.to_str()
                .expect("invariant: collected paths are valid UTF-8")
                .replace('\\', "/")
        })
        .filter(|rel| !rules::exempt_path(rel))
        .collect())
}

/// Run the full three-layer analysis over the workspace at `root`.
pub fn analyze(root: &Path) -> io::Result<Report> {
    let rels = scannable_files(root)?;

    // Per-file work (read + lex + parse + token rules) is independent; fan
    // it out on the bounded worker pool. Results come back in index order,
    // so the scan stays deterministic at any PALDIA_JOBS setting.
    let scanned: Vec<io::Result<Scanned>> = paldia_core::pool::run_indexed(rels.len(), |i| {
        let rel = &rels[i];
        let src = fs::read_to_string(root.join(rel))?;
        let lexed = lexer::lex(&src);
        let raw = rules::check_file(rel, &lexed);
        let ast = parse::parse(rel, &lexed);
        Ok(Scanned {
            rel: rel.clone(),
            lexed,
            ast: Some(ast),
            raw,
        })
    });
    let mut scanned: Vec<Scanned> = scanned.into_iter().collect::<io::Result<_>>()?;
    let files_scanned = scanned.len();

    // Pass 2: crate graph — manifest coverage, b1 edges, b2 re-exports.
    let (crate_graph, mut diags) = graph::load(root)?;
    diags.extend(graph::check_b1(&crate_graph));
    let asts: Vec<parse::FileAst> = scanned.iter_mut().filter_map(|s| s.ast.take()).collect();
    diags.extend(graph::check_b2(&crate_graph, &asts));

    // Token diagnostics, with every suppression that fires recorded so the
    // stale-allow audit can see which hatches/entries still pull weight.
    let mut used_hatches: BTreeSet<(String, usize, String)> = BTreeSet::new();
    let mut used_entries: BTreeSet<usize> = BTreeSet::new();
    for s in &mut scanned {
        let raw = std::mem::take(&mut s.raw);
        let (kept, used) = filter_hatched(&s.lexed, raw);
        for (line, rule) in used {
            used_hatches.insert((s.rel.clone(), line, rule));
        }
        for d in kept {
            match allowlist::entry_index(d.rule, &d.path) {
                Some(idx) => {
                    used_entries.insert(idx);
                }
                None => diags.push(d),
            }
        }
    }

    // Pass 3: reachability. A fenced call site covered by its governing
    // rule's hatch/allowlist (or an explicit `reach` hatch) is a reviewed
    // exemption, and that usage keeps the suppression alive in the audit.
    {
        let lex_by_path: BTreeMap<&str, &lexer::Lexed> =
            scanned.iter().map(|s| (s.rel.as_str(), &s.lexed)).collect();
        let mut suppress = |path: &str, line: usize, rules_: &[&str]| -> bool {
            for rule in rules_ {
                if let Some(lexed) = lex_by_path.get(path) {
                    let hatch = lexed
                        .allows
                        .iter()
                        .find(|(l, r)| r == rule && (*l == line || *l + 1 == line));
                    if let Some((hl, hr)) = hatch {
                        used_hatches.insert((path.to_string(), *hl, hr.clone()));
                        return true;
                    }
                }
                if let Some(idx) = allowlist::entry_index(rule, path) {
                    used_entries.insert(idx);
                    return true;
                }
            }
            false
        };
        diags.extend(reach::check_reach(&crate_graph, &asts, &mut suppress));
    }

    // Stale-hatch audit: every recorded hatch and allowlist entry must have
    // suppressed at least one diagnostic this run.
    for s in &scanned {
        let test_lines: Vec<(usize, usize)> = s
            .lexed
            .test_ranges
            .iter()
            .filter_map(|&(a, b)| {
                let toks = &s.lexed.tokens;
                Some((toks.get(a)?.line, toks.get(b.saturating_sub(1))?.line))
            })
            .collect();
        for (line, rule) in &s.lexed.allows {
            if used_hatches.contains(&(s.rel.clone(), *line, rule.clone())) {
                continue;
            }
            if test_lines.iter().any(|&(a, b)| a <= *line && *line <= b) {
                continue; // test code is out of scope, its hatches are inert
            }
            let known = rules::ALL_RULES.contains(&rule.as_str())
                || rules::BOUNDARY_RULES.contains(&rule.as_str());
            let message = if known {
                format!("`lint:allow({rule})` suppresses no diagnostic; remove the stale hatch")
            } else {
                format!(
                    "`lint:allow({rule})` names an unknown rule (known: d1 d2 d3 r1 r2 b1 b2 \
                     reach); fix or remove the hatch"
                )
            };
            diags.push(Diagnostic {
                path: s.rel.clone(),
                line: *line,
                rule: "stale-allow",
                message,
            });
        }
    }
    for (idx, a) in allowlist::ALLOWLIST.iter().enumerate() {
        if used_entries.contains(&idx) {
            continue;
        }
        // Only audit entries whose path exists in this scan — fixture
        // corpora must not flag the real tree's entries as stale.
        if scanned.iter().any(|s| s.rel.ends_with(a.path_suffix)) {
            diags.push(Diagnostic {
                path: "crates/lint/src/allowlist.rs".to_string(),
                line: 1,
                rule: "stale-allow",
                message: format!(
                    "allowlist entry `{}:{}` suppresses no diagnostic; remove the stale entry",
                    a.rule, a.path_suffix
                ),
            });
        }
    }

    diags.sort_by(|a, b| (a.path.as_str(), a.line, a.rule).cmp(&(b.path.as_str(), b.line, b.rule)));
    let crates = crate_graph
        .crates
        .values()
        .map(|c| {
            let class = c.class.map_or("unclassified", |cl| cl.name());
            (c.dir.clone(), class.to_string())
        })
        .collect();
    Ok(Report {
        diagnostics: diags,
        files_scanned,
        crates,
    })
}

/// Apply `// lint:allow(…)` hatches to raw diagnostics. Returns the
/// surviving diagnostics plus the `(hatch line, rule)` pairs that fired.
pub fn filter_hatched(
    lexed: &lexer::Lexed,
    raw: Vec<Diagnostic>,
) -> (Vec<Diagnostic>, Vec<(usize, String)>) {
    let mut kept = Vec::new();
    let mut used = Vec::new();
    for d in raw {
        let hatch = lexed
            .allows
            .iter()
            .find(|(l, r)| r == d.rule && (*l == d.line || *l + 1 == d.line));
        match hatch {
            Some((l, r)) => {
                if !used.contains(&(*l, r.clone())) {
                    used.push((*l, r.clone()));
                }
            }
            None => kept.push(d),
        }
    }
    (kept, used)
}

/// Recursively gather `.rs` files as paths relative to `root`, skipping
/// build output, VCS metadata, and the lint crate's own fixture corpus.
fn collect_rs_files(root: &Path, dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<_> = fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .collect();
    entries.sort();
    for path in entries {
        let name = path
            .file_name()
            .and_then(|n| n.to_str())
            .unwrap_or_default();
        if path.is_dir() {
            if name == "target" || name.starts_with('.') || name == "fixtures" {
                continue;
            }
            collect_rs_files(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .expect("invariant: walked paths live under root")
                .to_path_buf();
            out.push(rel);
        }
    }
    Ok(())
}

/// Render diagnostics as plain text, one `file:line:rule: message` per line.
pub fn render_text(diags: &[Diagnostic]) -> String {
    let mut s = String::new();
    for d in diags {
        s.push_str(&d.render());
        s.push('\n');
    }
    s
}

/// Render diagnostics as a JSON array (hand-rolled; no serde in this crate).
pub fn render_json(diags: &[Diagnostic]) -> String {
    let mut s = String::from("[");
    for (i, d) in diags.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n  {{\"file\": \"{}\", \"line\": {}, \"rule\": \"{}\", \"message\": \"{}\"}}",
            json_escape(&d.path),
            d.line,
            d.rule,
            json_escape(&d.message)
        ));
    }
    if !diags.is_empty() {
        s.push('\n');
    }
    s.push_str("]\n");
    s
}

/// Render a full report as one JSON object — the CI artifact shape.
pub fn render_json_report(report: &Report) -> String {
    let mut s = String::from("{\n");
    s.push_str(&format!(
        "  \"files_scanned\": {},\n  \"crates\": {{",
        report.files_scanned
    ));
    for (i, (dir, class)) in report.crates.iter().enumerate() {
        if i > 0 {
            s.push(',');
        }
        s.push_str(&format!(
            "\n    \"{}\": \"{}\"",
            json_escape(dir),
            json_escape(class)
        ));
    }
    if !report.crates.is_empty() {
        s.push_str("\n  ");
    }
    s.push_str("},\n  \"diagnostics\": ");
    let diags = render_json(&report.diagnostics);
    // Indent the array body two spaces to sit inside the object.
    s.push_str(diags.trim_end().replace('\n', "\n  ").as_str());
    s.push_str("\n}\n");
    s
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }

    #[test]
    fn json_shape() {
        let diags = vec![Diagnostic {
            path: "crates/x/src/a.rs".into(),
            line: 3,
            rule: "d1",
            message: "msg".into(),
        }];
        let j = render_json(&diags);
        assert!(j.contains("\"file\": \"crates/x/src/a.rs\""));
        assert!(j.contains("\"line\": 3"));
        assert!(j.starts_with('[') && j.ends_with("]\n"));
        assert_eq!(render_json(&[]), "[]\n");
    }

    #[test]
    fn json_report_shape() {
        let report = Report {
            diagnostics: vec![Diagnostic {
                path: "crates/x/src/a.rs".into(),
                line: 3,
                rule: "b1",
                message: "msg".into(),
            }],
            files_scanned: 7,
            crates: vec![
                ("sim".to_string(), "deterministic-core".to_string()),
                ("zeta".to_string(), "unclassified".to_string()),
            ],
        };
        let j = render_json_report(&report);
        assert!(j.starts_with("{\n"), "{j}");
        assert!(j.ends_with("}\n"), "{j}");
        assert!(j.contains("\"files_scanned\": 7"));
        assert!(j.contains("\"sim\": \"deterministic-core\""));
        assert!(j.contains("\"zeta\": \"unclassified\""));
        assert!(j.contains("\"rule\": \"b1\""));
    }

    #[test]
    fn filter_hatched_reports_usage_once() {
        let lexed = lexer::lex("let a = 1; // lint:allow(d2)\nlet b = 2;\n");
        let mk = |line: usize| Diagnostic {
            path: "crates/sim/src/x.rs".into(),
            line,
            rule: "d2",
            message: "m".into(),
        };
        // Two diagnostics covered by the same hatch (own line + next line).
        let (kept, used) = filter_hatched(&lexed, vec![mk(1), mk(2)]);
        assert!(kept.is_empty());
        assert_eq!(used, vec![(1, "d2".to_string())]);
        // A diagnostic out of hatch range survives.
        let (kept, used) = filter_hatched(&lexed, vec![mk(5)]);
        assert_eq!(kept.len(), 1);
        assert!(used.is_empty());
    }
}
