//! The rule set: which patterns are violations, and where each rule binds.
//!
//! Rules operate on the token stream produced by [`crate::lexer`], so
//! comments and string contents never trip them. Scoping is by path:
//! vendored shims (`proptest`, `criterion`), the bench/CLI layer
//! (`crates/bench`, any `/bin/` path, the root `src/` facade), and test
//! code (`/tests/`, `/benches/`, `/examples/`, `#[cfg(test)]` items) are
//! exempt — the determinism contract binds the production simulation path,
//! and test-side determinism is enforced dynamically by
//! `tests/determinism_replay.rs`.

use crate::lexer::{Lexed, Tok};

/// One diagnostic: `file:line:rule: message`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Diagnostic {
    /// Path relative to the scanned root, with `/` separators.
    pub path: String,
    /// 1-based source line.
    pub line: usize,
    /// Rule id: a token rule (`d1`, `d2`, `d3`, `r1`, `r2`) or an analyzer
    /// rule (`b1`, `b2`, `reach`, `stale-allow`).
    pub rule: &'static str,
    /// Human-readable explanation.
    pub message: String,
}

impl Diagnostic {
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{}: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// Crates whose simulation output must replay bit-identically: any
/// iteration-order or float-order nondeterminism here corrupts experiments.
pub const SIM_FACING: &[&str] = &["sim", "cluster", "core", "baselines", "experiments", "obs"];

/// Crates that must be free of wall-clock and entropy sources (everything
/// the simulations and their inputs/outputs flow through).
pub const DETERMINISTIC: &[&str] = &[
    "sim",
    "cluster",
    "core",
    "baselines",
    "experiments",
    "hw",
    "workloads",
    "traces",
    "metrics",
    "obs",
];

/// Library crates where panicking shortcuts are banned (rule R1).
pub const LIBRARY: &[&str] = &["cluster", "core", "sim", "hw", "workloads", "obs"];

/// Files whose integer casts feed event keys or time arithmetic (rule R2).
pub const R2_FILES: &[&str] = &["crates/sim/src/event.rs", "crates/sim/src/time.rs"];

/// Integer types an `as` cast can truncate into.
const NARROWING: &[&str] = &[
    "u8", "u16", "u32", "u64", "usize", "i8", "i16", "i32", "i64", "isize",
];

/// All token-level rule ids, for `--rule` validation and docs.
pub const ALL_RULES: &[&str] = &["d1", "d2", "d3", "r1", "r2"];

/// Workspace-analyzer rule ids (crate graph, re-export fence, reachability,
/// and the stale-hatch audit).
pub const BOUNDARY_RULES: &[&str] = &["b1", "b2", "reach", "stale-allow"];

/// True when `path` (relative, `/`-separated) is exempt from every
/// token-level rule. The analyzer passes still see exempt crates through
/// their manifests; `crates/lint` itself is scanned so the stale-hatch
/// audit covers the analyzer's own sources.
pub fn exempt_path(path: &str) -> bool {
    let skip_crates = ["crates/proptest/", "crates/criterion/", "crates/bench/"];
    if skip_crates.iter().any(|p| path.starts_with(p)) {
        return true;
    }
    // Test/bench/example code and the CLI layer.
    if path.contains("/tests/")
        || path.contains("/benches/")
        || path.contains("/examples/")
        || path.contains("/bin/")
        || path.starts_with("tests/")
        || path.starts_with("examples/")
        || path.starts_with("benches/")
    {
        return true;
    }
    // The root `src/` facade + CLI entry points.
    if path.starts_with("src/") {
        return true;
    }
    false
}

/// The crate name a path belongs to (`crates/<name>/…`), if any.
pub fn crate_of(path: &str) -> Option<&str> {
    let rest = path.strip_prefix("crates/")?;
    rest.split('/').next()
}

fn in_scope(path: &str, scope: &[&str]) -> bool {
    crate_of(path).is_some_and(|c| scope.contains(&c))
}

/// Run every applicable token rule over one lexed file. Diagnostics come
/// back **raw** — `// lint:allow(…)` hatches and the allowlist are applied
/// by the driver ([`crate::filter_hatched`] and the allowlist filter in
/// `analyze`), which records which suppressions actually fired so the
/// stale-hatch audit can flag the ones that no longer do.
pub fn check_file(path: &str, lexed: &Lexed) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    if exempt_path(path) {
        return out;
    }
    let toks = &lexed.tokens;

    let mut push = |i: usize, rule: &'static str, message: String| {
        let line = toks[i].line;
        out.push(Diagnostic {
            path: path.to_string(),
            line,
            rule,
            message,
        });
    };

    let d1 = in_scope(path, SIM_FACING);
    let d2 = in_scope(path, DETERMINISTIC);
    let d3 = in_scope(path, SIM_FACING);
    let r1 = in_scope(path, LIBRARY);
    let r2 = R2_FILES.iter().any(|f| path.ends_with(f));

    for i in 0..toks.len() {
        if lexed.in_test_code(i) {
            continue;
        }
        let ident = match &toks[i].tok {
            Tok::Ident(s) => Some(s.as_str()),
            _ => None,
        };

        // D1 — hash-based collections in sim-facing crates. Conservative by
        // design: *any* mention is flagged, because a map that is only ever
        // probed today is one `for (k, v) in` away from nondeterminism.
        if d1 {
            if let Some(name @ ("HashMap" | "HashSet")) = ident {
                push(
                    i,
                    "d1",
                    format!(
                        "`{name}` in a sim-facing crate: iteration order is \
                         nondeterministic; use BTreeMap/BTreeSet or an \
                         explicit sorted collect"
                    ),
                );
            }
        }

        // D2 — wall-clock / entropy sources in deterministic crates.
        if d2 {
            match ident {
                Some(name @ ("Instant" | "SystemTime")) => push(
                    i,
                    "d2",
                    format!(
                        "`{name}` in a deterministic crate: wall-clock reads \
                         diverge between runs; use SimTime"
                    ),
                ),
                Some("env")
                    if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Op(':')))
                        && matches!(toks.get(i + 2).map(|t| &t.tok), Some(Tok::Op(':')))
                        && matches!(
                            toks.get(i + 3).map(|t| &t.tok),
                            Some(Tok::Ident(s)) if s == "var" || s == "var_os"
                        ) =>
                {
                    push(
                        i,
                        "d2",
                        "`env::var` in a deterministic crate: environment \
                         reads belong in the CLI/bench layer"
                            .to_string(),
                    )
                }
                _ => {}
            }
        }

        // D3 — float (in)equality and partial_cmp().unwrap() ordering.
        if d3 {
            // `==` / `!=` with a float-literal operand. The lexer yields
            // `==` as two '=' ops and `!=` as '!' '='.
            if let Tok::Op('=') = toks[i].tok {
                let prev = i.checked_sub(1).and_then(|p| toks.get(p)).map(|t| &t.tok);
                let next_is_eq = matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Op('=')));
                // `a == b`: this is the FIRST `=` of the pair; operands sit
                // at i-1 / i+2. `a != b`: this is the lone `=` after `!`;
                // operands sit at i-2 / i+1.
                let is_eq = next_is_eq && !matches!(prev, Some(Tok::Op('=' | '!' | '<' | '>')));
                let is_ne = matches!(prev, Some(Tok::Op('!'))) && !next_is_eq;
                if is_eq || is_ne {
                    let lhs_float = matches!(
                        i.checked_sub(if is_ne { 2 } else { 1 })
                            .and_then(|p| toks.get(p))
                            .map(|t| &t.tok),
                        Some(Tok::Float)
                    );
                    let rhs_float = matches!(
                        toks.get(i + if is_eq { 2 } else { 1 }).map(|t| &t.tok),
                        Some(Tok::Float)
                    );
                    if lhs_float || rhs_float {
                        push(
                            i,
                            "d3",
                            "float equality comparison: exact f64 compares are \
                             not a stable ordering key; compare integers, bits, \
                             or a clamped range"
                                .to_string(),
                        );
                    }
                }
            }
            // `partial_cmp(…).unwrap()` / `.expect(…)`.
            if ident == Some("partial_cmp") {
                if let Some(end) = matching_close(toks, i + 1) {
                    let chained_unwrap =
                        matches!(toks.get(end + 1).map(|t| &t.tok), Some(Tok::Op('.')))
                            && matches!(
                                toks.get(end + 2).map(|t| &t.tok),
                                Some(Tok::Ident(s)) if s == "unwrap" || s == "expect"
                            );
                    if chained_unwrap {
                        push(
                            i,
                            "d3",
                            "`partial_cmp().unwrap()` is not a total order over \
                             floats (NaN panics, -0.0/0.0 ties); use total_cmp \
                             or an integer key"
                                .to_string(),
                        );
                    }
                }
            }
        }

        // R1 — panicking shortcuts in library crates.
        if r1 {
            match ident {
                Some("unwrap")
                    if matches!(
                        i.checked_sub(1).and_then(|p| toks.get(p)).map(|t| &t.tok),
                        Some(Tok::Op('.'))
                    ) && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Op('('))) =>
                {
                    push(
                        i,
                        "r1",
                        "bare `unwrap()` in a library crate: return a typed \
                         error or use expect(\"invariant: …\")"
                            .to_string(),
                    )
                }
                Some("expect")
                    if matches!(
                        i.checked_sub(1).and_then(|p| toks.get(p)).map(|t| &t.tok),
                        Some(Tok::Op('.'))
                    ) && matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Op('('))) =>
                {
                    let ok = matches!(
                        toks.get(i + 2).map(|t| &t.tok),
                        Some(Tok::Str(s)) if s.starts_with("invariant: ")
                    );
                    if !ok {
                        push(
                            i,
                            "r1",
                            "`expect` in a library crate must state its \
                             invariant: expect(\"invariant: …\")"
                                .to_string(),
                        )
                    }
                }
                Some(name @ ("panic" | "todo" | "unimplemented"))
                    if matches!(toks.get(i + 1).map(|t| &t.tok), Some(Tok::Op('!'))) =>
                {
                    push(
                        i,
                        "r1",
                        format!(
                            "`{name}!` in a library crate: return a typed error \
                             (assert!/debug_assert! stay allowed for invariants)"
                        ),
                    )
                }
                _ => {}
            }
        }

        // R2 — narrowing `as` casts in event-key/time arithmetic.
        if r2 && ident == Some("as") {
            if let Some(Tok::Ident(ty)) = toks.get(i + 1).map(|t| &t.tok) {
                if NARROWING.contains(&ty.as_str()) {
                    push(
                        i,
                        "r2",
                        format!(
                            "`as {ty}` in event-key/time arithmetic can \
                             truncate silently; use try_from or the u128 key \
                             helpers"
                        ),
                    );
                }
            }
        }
    }
    out
}

/// Given the index of an opening `(`, return the index of its matching `)`.
fn matching_close(toks: &[crate::lexer::Token], open: usize) -> Option<usize> {
    if !matches!(toks.get(open).map(|t| &t.tok), Some(Tok::Op('('))) {
        return None;
    }
    let mut depth = 0usize;
    for (j, t) in toks.iter().enumerate().skip(open) {
        match t.tok {
            Tok::Op('(') => depth += 1,
            Tok::Op(')') => {
                depth -= 1;
                if depth == 0 {
                    return Some(j);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn diags(path: &str, src: &str) -> Vec<(usize, &'static str)> {
        check_file(path, &lex(src))
            .into_iter()
            .map(|d| (d.line, d.rule))
            .collect()
    }

    #[test]
    fn d1_flags_hash_collections_only_in_scope() {
        let src = "use std::collections::HashMap;\n";
        assert_eq!(diags("crates/cluster/src/x.rs", src), vec![(1, "d1")]);
        assert_eq!(diags("crates/metrics/src/x.rs", src), vec![]);
    }

    #[test]
    fn d2_flags_clock_and_env() {
        let src = "let t = Instant::now();\nlet v = std::env::var(\"X\");\n";
        assert_eq!(
            diags("crates/traces/src/x.rs", src),
            vec![(1, "d2"), (2, "d2")]
        );
    }

    #[test]
    fn d3_flags_float_eq_and_partial_cmp_unwrap() {
        let src = "if x == 1.0 {}\nlet o = a.partial_cmp(&b).unwrap();\nif n == 3 {}\n";
        // sim is both sim-facing and a library crate, so the bare unwrap
        // also trips r1 — rules compose.
        assert_eq!(
            diags("crates/sim/src/x.rs", src),
            vec![(1, "d3"), (2, "d3"), (2, "r1")]
        );
    }

    #[test]
    fn d3_flags_float_not_equal() {
        let src = "if x != 0.5 {}\nif 2.0 != y {}\nif a != b {}\nlet z = !flag;\n";
        assert_eq!(
            diags("crates/sim/src/x.rs", src),
            vec![(1, "d3"), (2, "d3")]
        );
    }

    #[test]
    fn d3_ignores_comparison_operators_near_floats() {
        let src = "if x <= 1.0 {}\nif x >= 0.5 {}\nif x < 2.0 {}\n";
        assert_eq!(diags("crates/sim/src/x.rs", src), vec![]);
    }

    #[test]
    fn r1_flags_unwrap_weak_expect_and_panic() {
        let src = "let a = x.unwrap();\nlet b = y.expect(\"\");\nlet c = z.expect(\"short\");\npanic!(\"boom\");\nlet ok = w.expect(\"invariant: held\");\n";
        assert_eq!(
            diags("crates/core/src/x.rs", src),
            vec![(1, "r1"), (2, "r1"), (3, "r1"), (4, "r1")]
        );
    }

    #[test]
    fn r1_ignores_unwrap_or_family() {
        let src = "let a = x.unwrap_or(3);\nlet b = y.unwrap_or_default();\nlet c = z.unwrap_or_else(|| 4);\n";
        assert_eq!(diags("crates/core/src/x.rs", src), vec![]);
    }

    #[test]
    fn r2_scoped_to_key_and_time_files() {
        let src = "let x = (k >> 64) as u64;\nlet y = v as u128;\n";
        assert_eq!(diags("crates/sim/src/event.rs", src), vec![(1, "r2")]);
        assert_eq!(diags("crates/sim/src/engine.rs", src), vec![]);
    }

    #[test]
    fn hatches_are_left_to_the_driver_but_test_code_is_skipped() {
        let src = "use std::collections::HashMap; // lint:allow(d1)\n#[cfg(test)]\nmod tests {\n  fn f() { x.unwrap(); }\n}\n";
        let lexed = lex(src);
        let raw = check_file("crates/cluster/src/x.rs", &lexed);
        assert_eq!(
            raw.iter().map(|d| (d.line, d.rule)).collect::<Vec<_>>(),
            vec![(1, "d1")],
            "check_file reports raw diagnostics; the unwrap in test code stays skipped"
        );
        let (kept, used) = crate::filter_hatched(&lexed, raw);
        assert!(kept.is_empty(), "the driver applies the hatch: {kept:?}");
        assert_eq!(used, vec![(1, "d1".to_string())]);
    }

    #[test]
    fn exemptions() {
        assert!(exempt_path("crates/proptest/src/lib.rs"));
        assert!(exempt_path("crates/experiments/src/bin/repro.rs"));
        assert!(exempt_path("crates/sim/tests/properties.rs"));
        assert!(exempt_path("src/bin/paldia-run.rs"));
        assert!(exempt_path("tests/headline_shapes.rs"));
        assert!(!exempt_path("crates/sim/src/event.rs"));
        assert!(
            !exempt_path("crates/lint/src/lib.rs"),
            "the analyzer scans its own sources"
        );
    }

    #[test]
    fn rule_id_sets_are_disjoint() {
        for b in BOUNDARY_RULES {
            assert!(!ALL_RULES.contains(b), "{b} is in both rule sets");
        }
    }
}
