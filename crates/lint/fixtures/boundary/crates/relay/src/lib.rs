// Fixture: reach — `PaldiaScheduler` methods are seeds; `monitor_tick`
// reaches a `std::thread::spawn` through a private helper. The re-export
// feeds the cross-crate b2 chain case in `enginecore`.
pub use std::time::SystemTime as Stamp;

pub struct PaldiaScheduler;

impl PaldiaScheduler {
    pub fn monitor_tick(&self) {
        spin();
        let _ = sanctioned_jobs();
    }
}

fn spin() {
    std::thread::spawn(|| {});
}

// Negative: a reviewed `reach` hatch exempts this sink, mirroring the real
// tree's PALDIA_JOBS read (bit-identical results at any job count).
pub fn sanctioned_jobs() -> Option<String> {
    std::env::var("JOBS").ok() // lint:allow(reach)
}
