// Fixture: a tooling-class crate; deterministic-core crates must not reach
// it through `[dependencies]` edges (rule b1).
pub fn helper_version() -> u32 {
    1
}
