// Fixture: reach — the seed entry point. `run_simulation_boundary` matches
// the `run_simulation*` seed pattern; both of its call chains end at a
// fenced wall-clock read, one inside this crate and one crossing into the
// shell-class crate `shellbin`.
use crate::helper;

pub fn run_simulation_boundary(ticks: u64) -> u64 {
    let mut acc = 0;
    for _ in 0..ticks {
        acc += helper::phase();
    }
    acc + shellbin::wall_ms()
}
