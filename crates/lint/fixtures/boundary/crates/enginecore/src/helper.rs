// Fixture: reach — a fenced sink two hops from the seed, reached through
// an in-crate helper chain and laundered through a `use` import (the call
// site below never spells `std::time`).
use std::time::Instant;

pub fn phase() -> u64 {
    now_ms()
}

fn now_ms() -> u64 {
    Instant::now().elapsed().as_millis() as u64
}
