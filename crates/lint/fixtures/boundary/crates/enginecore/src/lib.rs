// Fixture: rule b2 — `pub use` re-exports that leak fenced symbols out of
// a deterministic-core crate, including renames and cross-crate chains.
pub mod engine;
pub mod helper;

pub use std::time::Instant as Clock;
pub use std::collections::{BTreeMap, HashSet};
pub use std::time::*;
pub use relay::Stamp;

// Negative: Duration is not fenced; re-exporting it is fine.
pub use std::time::Duration;

// Negative: re-exporting a workspace function is fine.
pub use helper::phase;
