// Fixture: reach — a shell-class crate may read the wall clock, but a
// deterministic-core call chain that lands here is a boundary crossing and
// must be reported with the crossing named.
pub fn wall_ms() -> u64 {
    std::time::Instant::now().elapsed().as_millis() as u64
}
