// Fixture: this crate exists on disk but has no entry in
// classification.toml — the manifest-coverage check must flag it.
pub fn orphan() -> u32 {
    0
}
