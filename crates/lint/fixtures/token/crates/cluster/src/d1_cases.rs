// Fixture: rule d1 — hash collections in a sim-facing crate.
use std::collections::HashMap;
use std::collections::HashSet;

struct Sched {
    queues: HashMap<u32, Vec<u32>>,
}

// Negative: hatch on the offending line.
type Hatch = HashMap<u32, u32>; // lint:allow(d1)

// Negative: hatch on the line above.
// lint:allow(d1)
type HatchAbove = HashSet<u32>;

// Negative: deterministic collections are fine.
use std::collections::{BTreeMap, BTreeSet};

#[cfg(test)]
mod tests {
    // Negative: test code is out of scope.
    use std::collections::HashMap;

    fn helper() -> HashMap<u32, u32> {
        HashMap::new()
    }
}
