// Fixture: stale-allow — hatches that suppress nothing are themselves
// diagnostics, so reviewed exemptions cannot quietly outlive the code
// they excused.
fn fine() -> u64 {
    7 // lint:allow(d1)
}

// A hatch naming a rule that does not exist suppresses nothing by
// construction.
fn typo() -> u64 {
    8 // lint:allow(d9)
}

// Negative: this hatch suppresses a real d1 diagnostic, so it is live.
type Live = std::collections::HashMap<u32, u32>; // lint:allow(d1)
