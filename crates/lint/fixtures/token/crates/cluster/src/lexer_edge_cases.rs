// Fixture: lexer edge cases — byte strings, raw byte strings, and char
// literals containing escaped quotes must not desync the masker. The
// pre-fix lexer consumed `'\''` one byte short, leaving a stray quote that
// could open a phantom string and swallow real code; here that would have
// masked the HashMap on the flagged line below.
fn delimiters() -> usize {
    let pair = ['\'', '"'];
    pair.len()
}

fn desync_bait() -> usize {
    let q = '\'';
    let quotes = ['\'', '"'];
    let m: std::collections::HashMap<u32, u32> = std::collections::HashMap::new();
    m.len() + quotes.len() + (q as usize)
}

// Negative: fenced names inside byte and raw-byte strings are prose, not
// code, at every hash depth.
fn masked_mentions() -> usize {
    let plain = b"HashMap and Instant live here";
    let raw = br#"HashSet::new() and "SystemTime" too"#;
    let deep = br##"even r#"HashMap"# nested"##;
    let escaped = b"a \" quoted HashMap \" mention";
    plain.len() + raw.len() + deep.len() + escaped.len()
}

// Negative: escaped-quote char literals in every position.
fn quote_chars() -> u32 {
    let a = '\'';
    let b = '"';
    let c = '\"';
    let d = '\\';
    (a as u32) + (b as u32) + (c as u32) + (d as u32)
}
