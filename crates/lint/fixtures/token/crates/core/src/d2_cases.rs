// Fixture: rule d2 — wall-clock and entropy sources in deterministic crates.
use std::time::Instant;

fn stamp() -> std::time::SystemTime {
    std::time::SystemTime::now()
}

fn jobs() -> Option<String> {
    std::env::var("JOBS").ok()
}

// Negative: hatched site.
fn hatched() -> Option<std::ffi::OsString> {
    std::env::var_os("JOBS") // lint:allow(d2)
}

// Negative: `env` alone (a module path, no var read) is fine.
fn module_only() {
    let _args: Vec<String> = std::env::args().collect();
}

// Negative: mentions in strings and comments don't count: Instant::now().
const DOC: &str = "never call Instant::now() here";
