// Fixture: rule r1 — panicking shortcuts in library crates.
fn bare(x: Option<u32>) -> u32 {
    x.unwrap()
}

fn empty_expect(x: Option<u32>) -> u32 {
    x.expect("")
}

fn weak_expect(x: Option<u32>) -> u32 {
    x.expect("should work")
}

fn boom() {
    panic!("unreachable");
}

fn later() {
    todo!()
}

// Negative: invariant-messaged expects are the sanctioned form.
fn invariant(x: Option<u32>) -> u32 {
    x.expect("invariant: caller checked presence")
}

// Negative: non-panicking unwrap family.
fn fallback(x: Option<u32>) -> u32 {
    x.unwrap_or(0) + x.unwrap_or_default() + x.unwrap_or_else(|| 1)
}

// Negative: hatched site.
fn hatched(x: Option<u32>) -> u32 {
    x.unwrap() // lint:allow(r1)
}
