// Fixture: rule d3 — float equality and partial_cmp().unwrap() ordering.
fn eq(x: f64) -> bool {
    x == 1.0
}

fn ne(x: f64) -> bool {
    x != 0.5
}

fn order(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap()
}

fn order_expect(a: f64, b: f64) -> std::cmp::Ordering {
    a.partial_cmp(&b).expect("comparable")
}

// Negative: range comparisons are fine.
fn clamp_check(x: f64) -> bool {
    x <= 1.0 && x >= 0.0 && x < 2.0
}

// Negative: integer equality is fine.
fn int_eq(n: u64) -> bool {
    n == 3
}

// Negative: total_cmp is the sanctioned float ordering.
fn total(a: f64, b: f64) -> std::cmp::Ordering {
    a.total_cmp(&b)
}

// Negative: hatched site.
fn hatched(x: f64) -> bool {
    x == 0.0 // lint:allow(d3)
}
