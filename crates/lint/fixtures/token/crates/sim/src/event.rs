// Fixture: rule r2 — narrowing casts in event-key/time arithmetic. The
// path mirrors the real crates/sim/src/event.rs so the file-scoped rule
// binds to it.
fn unpack(key: u128) -> u64 {
    (key >> 64) as u64
}

// Negative: widening casts are fine.
fn pack(at: u64, seq: u64) -> u128 {
    ((at as u128) << 64) | seq as u128
}

// Negative: hatched site with a recorded justification.
fn clamped(ms: f64) -> u64 {
    // Saturating float-to-int cast is deterministic and intended here.
    ms as u64 // lint:allow(r2)
}
