// Fixture: negative — `/tests/` paths are fully out of scope, so none of
// these otherwise-flagged patterns produce diagnostics.
use std::collections::HashMap;
use std::time::Instant;

fn free_for_all(x: Option<f64>) -> f64 {
    let v = x.unwrap();
    if v == 1.0 {
        panic!("tests may panic");
    }
    v
}
