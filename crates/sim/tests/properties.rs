//! Property-based tests for the DES engine primitives.

use paldia_sim::{EventKey, EventQueue, OnlineStats, SimDuration, SimRng, SimTime};
use proptest::prelude::*;

proptest! {
    /// `EventKey` ordering is a total order: antisymmetric and transitive
    /// over arbitrary (time, seq) pairs. Keys are built from integers only
    /// (never floats), so there is no NaN to poison comparisons — this pins
    /// the contract that event ordering never goes through `partial_cmp`.
    #[test]
    fn event_key_order_is_antisymmetric_and_transitive(
        a in (0u64..1 << 50, any::<u64>()),
        b in (0u64..1 << 50, any::<u64>()),
        c in (0u64..1 << 50, any::<u64>()),
    ) {
        let ka = EventKey::new(SimTime::from_micros(a.0), a.1);
        let kb = EventKey::new(SimTime::from_micros(b.0), b.1);
        let kc = EventKey::new(SimTime::from_micros(c.0), c.1);
        // Totality: cmp never panics and partial_cmp always agrees.
        prop_assert_eq!(ka.partial_cmp(&kb), Some(ka.cmp(&kb)));
        // Antisymmetry: a <= b and b <= a implies a == b.
        if ka <= kb && kb <= ka {
            prop_assert_eq!(ka, kb);
        }
        // The comparison reverses cleanly.
        prop_assert_eq!(ka.cmp(&kb), kb.cmp(&ka).reverse());
        // Transitivity: a <= b <= c implies a <= c.
        if ka <= kb && kb <= kc {
            prop_assert!(ka <= kc);
        }
        // Time-major: an earlier firing time orders first regardless of seq.
        if a.0 < b.0 {
            prop_assert!(ka < kb);
        }
        // Round-trip: packing loses nothing.
        prop_assert_eq!(ka.time(), SimTime::from_micros(a.0));
        prop_assert_eq!(ka.seq(), a.1);
    }

    /// The calendar queue pops events in non-decreasing time order and,
    /// within a timestamp, in insertion (FIFO) order.
    #[test]
    fn queue_total_order(times in proptest::collection::vec(0u64..10_000, 1..200)) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let drained = q.drain_ordered();
        // Non-decreasing times.
        for w in drained.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            // FIFO within equal timestamps: insertion index increases.
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1);
            }
        }
        prop_assert_eq!(drained.len(), times.len());
    }

    /// SimTime/SimDuration arithmetic is consistent: (t + d) - t == d.
    #[test]
    fn time_addition_roundtrip(t in 0u64..u64::MAX / 4, d in 0u64..u64::MAX / 4) {
        let time = SimTime::from_micros(t);
        let dur = SimDuration::from_micros(d);
        prop_assert_eq!((time + dur) - time, dur);
    }

    /// Millisecond round-trips are exact at microsecond granularity.
    #[test]
    fn millis_roundtrip(us in 0u64..1_000_000_000_000) {
        let d = SimDuration::from_micros(us);
        let back = SimDuration::from_millis_f64(d.as_millis_f64());
        // Conversion goes through f64; exact below 2^53 µs.
        prop_assert_eq!(back, d);
    }

    /// The RNG's uniform integers stay within their bound.
    #[test]
    fn rng_bounds(seed in any::<u64>(), bound in 1u64..1_000_000) {
        let mut rng = SimRng::new(seed);
        for _ in 0..100 {
            prop_assert!(rng.next_below(bound) < bound);
        }
    }

    /// The same seed always reproduces the same stream.
    #[test]
    fn rng_deterministic(seed in any::<u64>()) {
        let mut a = SimRng::new(seed);
        let mut b = SimRng::new(seed);
        for _ in 0..64 {
            prop_assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    /// OnlineStats::merge is equivalent to pushing everything sequentially.
    #[test]
    fn stats_merge_associative(
        xs in proptest::collection::vec(-1e6f64..1e6, 0..100),
        ys in proptest::collection::vec(-1e6f64..1e6, 0..100),
    ) {
        let mut merged = OnlineStats::new();
        for &x in &xs { merged.push(x); }
        let mut right = OnlineStats::new();
        for &y in &ys { right.push(y); }
        merged.merge(&right);

        let mut seq = OnlineStats::new();
        for &x in xs.iter().chain(ys.iter()) { seq.push(x); }

        prop_assert_eq!(merged.count(), seq.count());
        if !seq.is_empty() {
            prop_assert!((merged.mean() - seq.mean()).abs() < 1e-6);
            prop_assert!((merged.variance() - seq.variance()).abs() < 1e-3);
        }
    }

    /// Exponential samples are non-negative; Poisson means are tracked.
    #[test]
    fn distributions_sane(seed in any::<u64>(), rate in 0.01f64..100.0) {
        let mut rng = SimRng::new(seed);
        for _ in 0..50 {
            prop_assert!(rng.exponential(rate) >= 0.0);
        }
        let mean = rate; // reuse as a Poisson mean
        for _ in 0..20 {
            let _ = rng.poisson(mean); // must not hang or panic
        }
    }
}

proptest! {
    /// After the u128 key packing, same-instant events still pop strictly
    /// FIFO even when interleaved with events at other instants: per
    /// timestamp, payloads come out in exactly their insertion order.
    #[test]
    fn queue_same_instant_fifo(
        times in proptest::collection::vec(0u64..50, 1..300),
    ) {
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        let drained = q.drain_ordered();
        // Group by timestamp and check each group is an increasing
        // subsequence of insertion indices equal to the scheduled set.
        for instant in 0u64..50 {
            let at = SimTime::from_micros(instant);
            let popped: Vec<usize> = drained
                .iter()
                .filter(|(t, _)| *t == at)
                .map(|&(_, i)| i)
                .collect();
            let scheduled: Vec<usize> = times
                .iter()
                .enumerate()
                .filter(|&(_, &t)| t == instant)
                .map(|(i, _)| i)
                .collect();
            prop_assert_eq!(popped, scheduled);
        }
    }

    /// Release-mode contract: scheduling behind the last popped event
    /// clamps to that time instead of corrupting the order — every pop
    /// sequence stays non-decreasing no matter how stale the schedule.
    /// (In debug builds the same call panics, covered by a unit test.)
    #[test]
    fn queue_past_clamp_keeps_order(
        times in proptest::collection::vec(0u64..1_000, 2..100),
        late_offsets in proptest::collection::vec(0u64..2_000, 1..50),
    ) {
        if cfg!(debug_assertions) {
            // The clamp path is release-only; nothing to probe here.
            return Ok(());
        }
        let mut q = EventQueue::new();
        for (i, &t) in times.iter().enumerate() {
            q.schedule(SimTime::from_micros(t), i);
        }
        // Pop half, then schedule events that may land before the floor.
        let mut last = SimTime::ZERO;
        for _ in 0..times.len() / 2 {
            let (t, _) = q.pop().expect("pending");
            prop_assert!(t >= last);
            last = t;
        }
        for (j, &off) in late_offsets.iter().enumerate() {
            // Deliberately straddles the floor: offsets below `last` are
            // in the past and must clamp to it.
            q.schedule(SimTime::from_micros(off), times.len() + j);
        }
        while let Some((t, _)) = q.pop() {
            prop_assert!(t >= last, "clamp violated: {:?} after {:?}", t, last);
            last = t;
        }
    }
}
