//! Bounded worker pool shared by y-search and the experiment runner.
//!
//! The pre-existing code spawned one OS thread per hardware candidate on
//! every evaluation round — roughly six spawns per monitor tick per
//! simulated cluster, tens of thousands per experiment sweep. This module
//! replaces that with a single primitive, [`run_indexed`]: run `n`
//! independent jobs across at most [`max_jobs`] scoped threads (the caller
//! participates as one worker) and return the results **in index order**,
//! so parallel execution is observationally identical to a serial loop.
//!
//! Concurrency cap resolution, highest priority first:
//!
//! 1. [`set_jobs`] — process-wide programmatic override (`repro --jobs N`);
//! 2. the `PALDIA_JOBS` environment variable;
//! 3. `std::thread::available_parallelism()`.
//!
//! Nested calls run inline on the calling worker: a pool job that itself
//! calls [`run_indexed`] (e.g. an experiment cell whose scheduler runs
//! y-search) executes serially instead of oversubscribing the host. This
//! also keeps nested work deterministic regardless of the outer pool's
//! schedule.

use std::cell::Cell;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Process-wide override; 0 = unset.
static JOBS_OVERRIDE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static IN_POOL: Cell<bool> = const { Cell::new(false) };
}

/// Set the process-wide worker cap. `0` clears the override.
pub fn set_jobs(n: usize) {
    JOBS_OVERRIDE.store(n, Ordering::SeqCst);
}

/// The effective worker cap: [`set_jobs`], else `PALDIA_JOBS`, else
/// `available_parallelism()`.
pub fn max_jobs() -> usize {
    let explicit = JOBS_OVERRIDE.load(Ordering::SeqCst);
    if explicit > 0 {
        return explicit;
    }
    if let Some(n) = std::env::var("PALDIA_JOBS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
    {
        return n;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// True while the current thread is executing a pool job; used by nested
/// calls to fall back to inline serial execution.
pub fn in_pool() -> bool {
    IN_POOL.with(|c| c.get())
}

/// Run `f(0) .. f(n-1)` across at most [`max_jobs`] threads and return the
/// results in index order. Workers claim indices from a shared counter, so
/// load imbalance between jobs does not idle threads; the deterministic
/// index-order merge makes the output independent of scheduling.
pub fn run_indexed<T, F>(n: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if n == 0 {
        return Vec::new();
    }
    let jobs = max_jobs().min(n);
    if jobs <= 1 || in_pool() {
        return (0..n).map(f).collect();
    }

    // A worker that hits a panicking job stops claiming further indices and
    // carries the payload back; the submitter re-raises it (lowest job index
    // first, so concurrent failures surface deterministically) instead of
    // dying on a bare `JoinHandle::join` error with the context lost.
    type Panic = Box<dyn std::any::Any + Send + 'static>;
    let next = AtomicUsize::new(0);
    let work = |out: &mut Vec<(usize, T)>| -> Result<(), (usize, Panic)> {
        loop {
            let i = next.fetch_add(1, Ordering::Relaxed);
            if i >= n {
                return Ok(());
            }
            match catch_unwind(AssertUnwindSafe(|| f(i))) {
                Ok(v) => out.push((i, v)),
                Err(payload) => return Err((i, payload)),
            }
        }
    };

    let mut tagged: Vec<(usize, T)> = Vec::with_capacity(n);
    let mut failures: Vec<(usize, Panic)> = Vec::new();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..jobs - 1)
            .map(|_| {
                s.spawn(|| {
                    IN_POOL.with(|c| c.set(true));
                    let mut out = Vec::new();
                    let status = work(&mut out);
                    (out, status)
                })
            })
            .collect();
        // The calling thread is the last worker.
        IN_POOL.with(|c| c.set(true));
        let status = work(&mut tagged);
        IN_POOL.with(|c| c.set(false));
        if let Err(fail) = status {
            failures.push(fail);
        }
        for h in handles {
            let (out, status) = h
                .join()
                .expect("invariant: pool workers catch their jobs' panics");
            tagged.extend(out);
            if let Err(fail) = status {
                failures.push(fail);
            }
        }
    });
    if let Some((i, payload)) = failures.into_iter().min_by_key(|&(i, _)| i) {
        let msg = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned());
        match msg {
            Some(m) => resume_unwind(Box::new(format!("pool job {i} panicked: {m}"))),
            None => resume_unwind(payload),
        }
    }
    tagged.sort_unstable_by_key(|&(i, _)| i);
    debug_assert_eq!(tagged.len(), n);
    tagged.into_iter().map(|(_, v)| v).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        let out = run_indexed(100, |i| i * 3);
        assert_eq!(out, (0..100).map(|i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn zero_and_one_job() {
        assert!(run_indexed(0, |i| i).is_empty());
        assert_eq!(run_indexed(1, |i| i + 7), vec![7]);
    }

    #[test]
    fn nested_calls_run_inline() {
        let out = run_indexed(4, |i| {
            assert!(in_pool() || max_jobs() == 1);
            // The nested call must not deadlock or reorder.
            run_indexed(3, move |j| i * 10 + j)
        });
        assert_eq!(out[2], vec![20, 21, 22]);
    }

    /// Serializes the tests that touch the process-global jobs override.
    static JOBS_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn panicking_job_reaches_the_submitter_with_its_index() {
        let _guard = JOBS_LOCK.lock().unwrap();
        // Force real worker threads so the panic crosses a join.
        set_jobs(2);
        let caught = std::panic::catch_unwind(|| {
            run_indexed(8, |i| {
                if i == 3 {
                    panic!("shard 3 diverged");
                }
                i
            })
        });
        set_jobs(0);
        let payload = caught.expect_err("the job panic must propagate");
        let msg = payload
            .downcast_ref::<String>()
            .cloned()
            .expect("string panic message");
        assert!(msg.contains("pool job 3"), "missing job index: {msg}");
        assert!(msg.contains("shard 3 diverged"), "missing cause: {msg}");
    }

    #[test]
    fn jobs_override_round_trips() {
        let _guard = JOBS_LOCK.lock().unwrap();
        set_jobs(3);
        assert_eq!(max_jobs(), 3);
        set_jobs(0);
        assert!(max_jobs() >= 1);
    }
}
