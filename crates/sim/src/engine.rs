//! The event loop: pops events in time order and dispatches them to a
//! caller-supplied [`World`] until a horizon is reached or the calendar
//! drains.

use crate::event::EventQueue;
use crate::time::SimTime;

/// Domain logic driven by the engine.
///
/// `handle` receives the current simulated time, the event, and the calendar
/// so it can schedule follow-up events. The engine guarantees `now` is
/// non-decreasing across calls.
pub trait World {
    /// The event alphabet of this simulation.
    type Event;

    /// Process one event at simulated time `now`.
    fn handle(&mut self, now: SimTime, ev: Self::Event, q: &mut EventQueue<Self::Event>);
}

/// Why a run loop returned.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunOutcome {
    /// The calendar drained: no events remain before the horizon.
    Drained {
        /// Time of the last event processed (ZERO if none).
        last_event: SimTime,
        /// Number of events processed.
        events: u64,
    },
    /// The horizon was reached with events still pending.
    HorizonReached {
        /// The horizon that stopped the run.
        horizon: SimTime,
        /// Number of events processed.
        events: u64,
    },
    /// The event budget was exhausted (runaway-loop backstop).
    BudgetExhausted {
        /// Simulated time at which the budget ran out.
        at: SimTime,
        /// The budget that was exhausted.
        budget: u64,
    },
}

impl RunOutcome {
    /// Number of events the run processed.
    pub fn events(&self) -> u64 {
        match *self {
            RunOutcome::Drained { events, .. } => events,
            RunOutcome::HorizonReached { events, .. } => events,
            RunOutcome::BudgetExhausted { budget, .. } => budget,
        }
    }
}

/// Default backstop: no realistic experiment in this repo schedules more than
/// a few hundred million events; anything beyond this is a bug.
pub const DEFAULT_EVENT_BUDGET: u64 = 2_000_000_000;

/// Run until the calendar drains or an event at/after `horizon` would fire.
///
/// Events scheduled exactly at `horizon` are **not** processed (the horizon
/// is exclusive), so `run_until(w, q, end)` followed by another
/// `run_until(w, q, later_end)` processes each event exactly once.
pub fn run_until<W: World>(
    world: &mut W,
    q: &mut EventQueue<W::Event>,
    horizon: SimTime,
) -> RunOutcome {
    run_with_budget(world, q, horizon, DEFAULT_EVENT_BUDGET)
}

/// Run until the calendar fully drains (horizon = end of time).
pub fn run_to_completion<W: World>(world: &mut W, q: &mut EventQueue<W::Event>) -> RunOutcome {
    run_with_budget(world, q, SimTime::MAX, DEFAULT_EVENT_BUDGET)
}

/// Run with an explicit event budget; see [`run_until`] for horizon
/// semantics.
pub fn run_with_budget<W: World>(
    world: &mut W,
    q: &mut EventQueue<W::Event>,
    horizon: SimTime,
    budget: u64,
) -> RunOutcome {
    let mut events: u64 = 0;
    let mut last_event = SimTime::ZERO;
    loop {
        let Some(next) = q.peek_time() else {
            return RunOutcome::Drained { last_event, events };
        };
        if next >= horizon {
            return RunOutcome::HorizonReached { horizon, events };
        }
        if events >= budget {
            return RunOutcome::BudgetExhausted { at: next, budget };
        }
        let (now, ev) = q
            .pop()
            .expect("invariant: peek_time returned Some, so pop cannot fail");
        debug_assert!(now >= last_event, "time went backwards");
        last_event = now;
        events += 1;
        world.handle(now, ev, q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    struct Recorder {
        seen: Vec<(SimTime, u32)>,
    }

    enum Ev {
        Mark(u32),
        Chain(u32),
    }

    impl World for Recorder {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, ev: Ev, q: &mut EventQueue<Ev>) {
            match ev {
                Ev::Mark(id) => self.seen.push((now, id)),
                Ev::Chain(n) => {
                    self.seen.push((now, n));
                    if n > 0 {
                        q.schedule_in(now, SimDuration::from_millis(10), Ev::Chain(n - 1));
                    }
                }
            }
        }
    }

    #[test]
    fn processes_in_order_and_drains() {
        let mut w = Recorder { seen: vec![] };
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(20), Ev::Mark(2));
        q.schedule(SimTime::from_millis(10), Ev::Mark(1));
        let out = run_to_completion(&mut w, &mut q);
        assert_eq!(
            w.seen,
            vec![(SimTime::from_millis(10), 1), (SimTime::from_millis(20), 2)]
        );
        assert!(matches!(out, RunOutcome::Drained { events: 2, .. }));
    }

    #[test]
    fn chained_events_fire() {
        let mut w = Recorder { seen: vec![] };
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, Ev::Chain(3));
        let out = run_to_completion(&mut w, &mut q);
        assert_eq!(out.events(), 4);
        assert_eq!(w.seen.last().unwrap().0, SimTime::from_millis(30));
    }

    #[test]
    fn horizon_is_exclusive_and_resumable() {
        let mut w = Recorder { seen: vec![] };
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), Ev::Mark(1));
        q.schedule(SimTime::from_millis(20), Ev::Mark(2));
        q.schedule(SimTime::from_millis(30), Ev::Mark(3));

        let out = run_until(&mut w, &mut q, SimTime::from_millis(20));
        assert!(matches!(out, RunOutcome::HorizonReached { events: 1, .. }));
        assert_eq!(w.seen.len(), 1);

        // Resuming picks up the event exactly at the old horizon.
        let out = run_until(&mut w, &mut q, SimTime::from_millis(100));
        assert!(matches!(out, RunOutcome::Drained { events: 2, .. }));
        assert_eq!(w.seen.len(), 3);
    }

    #[test]
    fn budget_stops_runaway_loops() {
        struct Loop;
        impl World for Loop {
            type Event = ();
            fn handle(&mut self, now: SimTime, _ev: (), q: &mut EventQueue<()>) {
                q.schedule_in(now, SimDuration::from_micros(1), ());
            }
        }
        let mut q = EventQueue::new();
        q.schedule(SimTime::ZERO, ());
        let out = run_with_budget(&mut Loop, &mut q, SimTime::MAX, 1_000);
        assert!(matches!(
            out,
            RunOutcome::BudgetExhausted { budget: 1000, .. }
        ));
    }
}
