//! A log-bucketed latency histogram.
//!
//! Long fleet runs produce millions of latency samples; keeping every one
//! (as [`crate::stats::OnlineStats`] cannot answer percentiles and a full
//! sample vector can be large) is wasteful when a ~1% relative error is
//! fine. This histogram buckets values geometrically — constant *relative*
//! resolution — merges cheaply, and answers quantiles in O(buckets).

/// Geometric-bucket histogram over positive values.
#[derive(Clone, Debug)]
pub struct LogHistogram {
    /// Smallest representable value; everything below lands in bucket 0.
    min_value: f64,
    /// Bucket width as a growth factor (e.g. 1.02 → ~2% relative error).
    growth: f64,
    ln_growth: f64,
    counts: Vec<u64>,
    total: u64,
    /// Exact running extrema (cheap, and useful for reporting).
    min_seen: f64,
    max_seen: f64,
}

impl LogHistogram {
    /// Histogram covering `[min_value, ∞)` with the given growth factor.
    pub fn new(min_value: f64, growth: f64) -> Self {
        assert!(min_value > 0.0, "min_value must be positive");
        assert!(growth > 1.0, "growth must exceed 1");
        LogHistogram {
            min_value,
            growth,
            ln_growth: growth.ln(),
            counts: Vec::new(),
            total: 0,
            min_seen: f64::INFINITY,
            max_seen: f64::NEG_INFINITY,
        }
    }

    /// A sensible default for millisecond latencies: 10 µs floor, ~2%
    /// relative resolution.
    pub fn for_latency_ms() -> Self {
        LogHistogram::new(0.01, 1.02)
    }

    fn bucket_of(&self, v: f64) -> usize {
        if v <= self.min_value {
            return 0;
        }
        ((v / self.min_value).ln() / self.ln_growth).floor() as usize + 1
    }

    /// Representative (geometric-midpoint) value of a bucket.
    fn value_of(&self, bucket: usize) -> f64 {
        if bucket == 0 {
            return self.min_value;
        }
        self.min_value * self.growth.powf(bucket as f64 - 0.5)
    }

    /// Record one value (non-finite and non-positive values clamp to the
    /// floor bucket).
    pub fn record(&mut self, v: f64) {
        let v = if v.is_finite() { v } else { self.min_value };
        let b = self.bucket_of(v.max(0.0));
        if b >= self.counts.len() {
            self.counts.resize(b + 1, 0);
        }
        self.counts[b] += 1;
        self.total += 1;
        self.min_seen = self.min_seen.min(v);
        self.max_seen = self.max_seen.max(v);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.total
    }

    /// Smallest recorded value (`+inf` if empty).
    pub fn min(&self) -> f64 {
        self.min_seen
    }

    /// Largest recorded value (`-inf` if empty).
    pub fn max(&self) -> f64 {
        self.max_seen
    }

    /// Quantile estimate, `q` in `[0, 1]`. 0.0 for an empty histogram.
    /// Relative error is bounded by the growth factor.
    pub fn quantile(&self, q: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (b, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                // Clamp to the observed extrema so tails don't overshoot.
                return self.value_of(b).clamp(self.min_seen, self.max_seen);
            }
        }
        self.max_seen
    }

    /// Merge another histogram with identical parameters.
    pub fn merge(&mut self, other: &LogHistogram) {
        assert!(
            (self.min_value - other.min_value).abs() < 1e-12
                && (self.growth - other.growth).abs() < 1e-12,
            "histogram parameters must match to merge"
        );
        if other.counts.len() > self.counts.len() {
            self.counts.resize(other.counts.len(), 0);
        }
        for (b, &c) in other.counts.iter().enumerate() {
            self.counts[b] += c;
        }
        self.total += other.total;
        self.min_seen = self.min_seen.min(other.min_seen);
        self.max_seen = self.max_seen.max(other.max_seen);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn quantiles_within_relative_error() {
        let mut h = LogHistogram::for_latency_ms();
        let mut exact: Vec<f64> = Vec::new();
        let mut rng = SimRng::new(3);
        for _ in 0..50_000 {
            let v = rng.next_f64().powi(2) * 500.0 + 0.5;
            h.record(v);
            exact.push(v);
        }
        exact.sort_by(f64::total_cmp);
        for q in [0.5, 0.9, 0.99, 0.999] {
            let est = h.quantile(q);
            let truth = exact[((q * exact.len() as f64).ceil() as usize).max(1) - 1];
            let rel = (est - truth).abs() / truth;
            assert!(rel < 0.03, "q{q}: est {est} truth {truth} rel {rel}");
        }
    }

    #[test]
    fn extrema_and_count() {
        let mut h = LogHistogram::for_latency_ms();
        for v in [3.0, 1.0, 9.0] {
            h.record(v);
        }
        assert_eq!(h.count(), 3);
        assert_eq!(h.min(), 1.0);
        assert_eq!(h.max(), 9.0);
        assert!(h.quantile(1.0) <= 9.0);
        assert!(h.quantile(0.0) >= 1.0 * 0.97);
    }

    #[test]
    fn merge_equals_combined() {
        let mut a = LogHistogram::for_latency_ms();
        let mut b = LogHistogram::for_latency_ms();
        let mut whole = LogHistogram::for_latency_ms();
        let mut rng = SimRng::new(9);
        for i in 0..10_000 {
            let v = rng.next_f64() * 100.0 + 0.1;
            whole.record(v);
            if i % 2 == 0 {
                a.record(v);
            } else {
                b.record(v);
            }
        }
        a.merge(&b);
        assert_eq!(a.count(), whole.count());
        for q in [0.5, 0.95, 0.99] {
            assert!((a.quantile(q) - whole.quantile(q)).abs() < 1e-9);
        }
    }

    #[test]
    fn degenerate_inputs() {
        let mut h = LogHistogram::for_latency_ms();
        assert_eq!(h.quantile(0.99), 0.0);
        h.record(f64::NAN);
        h.record(-5.0);
        h.record(0.0);
        assert_eq!(h.count(), 3);
        assert!(h.quantile(0.5) <= h.min_value * 1.01 + 1e-9);
    }

    #[test]
    #[should_panic]
    fn merge_requires_matching_parameters() {
        let mut a = LogHistogram::new(0.01, 1.02);
        let b = LogHistogram::new(0.01, 1.05);
        a.merge(&b);
    }
}
