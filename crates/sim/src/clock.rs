//! The clock abstraction separating the deterministic scheduler core from
//! its executors.
//!
//! The event loop itself never asks "what time is it" — simulated time is
//! whatever the next calendar entry says. What distinguishes the discrete-
//! event executor from a real-time one is only *when the process is allowed
//! to act on that entry*: the DES acts immediately (virtual time jumps),
//! while a serving shell must hold each event until its moment on a wall
//! clock arrives. [`Clock::pace`] is exactly that hold point.
//!
//! Two implementations exist:
//!
//! * [`VirtualClock`] (here) — the DES executor. `pace` returns
//!   immediately, so a run burns through the calendar as fast as the host
//!   allows. Every simulation in this workspace runs on it.
//! * `WallClock` (in `paldia-serve`, the shell class) — maps each
//!   simulated microsecond onto a scaled wall-clock timeline and sleeps
//!   until the deadline. It lives outside the deterministic core because
//!   it reads `std::time::Instant`, which the determinism lint (rule d2
//!   and the boundary reachability pass) fences out of every
//!   deterministic-core crate.
//!
//! The contract that makes the serving shell's decisions diffable against
//! the sim's (DESIGN.md §14): `pace` must not mutate anything the domain
//! logic observes. It may block, it may record, but the event sequence —
//! and therefore every scheduling decision — is fully determined before
//! `pace` is ever consulted.

use crate::time::SimTime;

/// Gates the executor's progress along the simulated timeline.
///
/// The run loop calls [`Clock::pace`] with the timestamp of the next event
/// (or injected arrival) *before* acting on it; the clock returns when the
/// executor may proceed. Implementations must be pure observers of the
/// timeline: pacing can delay work but never reorder, drop, or alter it.
pub trait Clock {
    /// Block until the executor may process work stamped `next`.
    ///
    /// Called with non-decreasing values. A virtual clock returns
    /// immediately; a wall clock sleeps until `epoch + next / speedup`.
    fn pace(&mut self, next: SimTime);
}

/// The discrete-event executor's clock: virtual time, no waiting.
///
/// This is the "existing DES" side of the clock/executor split — driving a
/// replay session with `VirtualClock` is bit-identical to the batch
/// simulation entry points (enforced by `crates/cluster/tests/session_replay.rs`).
#[derive(Debug, Default, Clone, Copy)]
pub struct VirtualClock;

impl Clock for VirtualClock {
    #[inline]
    fn pace(&mut self, _next: SimTime) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn virtual_clock_never_blocks_and_is_object_safe() {
        let mut c = VirtualClock;
        let dynamic: &mut dyn Clock = &mut c;
        dynamic.pace(SimTime::ZERO);
        dynamic.pace(SimTime::from_secs(1_000_000));
    }
}
