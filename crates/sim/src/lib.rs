//! # paldia-sim
//!
//! A small, deterministic discrete-event simulation (DES) engine.
//!
//! Every experiment in the Paldia reproduction runs on top of this engine:
//! request arrivals, batch formation, GPU/CPU job completions, autoscaler
//! ticks, hardware procurement, and node failures are all events drawn from
//! a single totally-ordered calendar queue.
//!
//! Design goals:
//!
//! * **Determinism.** Identical seeds produce identical traces, schedules,
//!   and metrics, bit-for-bit, on every platform. Ties in event time are
//!   broken by insertion order (FIFO), never by heap internals.
//! * **No global state.** The engine owns nothing but the calendar; all
//!   domain state lives in the caller's [`World`] implementation.
//! * **Cheap events.** Events are plain enums moved by value; the queue is a
//!   binary heap of `(SimTime, u64, E)` triples.
//!
//! ```
//! use paldia_sim::{EventQueue, SimTime, SimDuration, World, run_until};
//!
//! struct Counter { fired: u32 }
//! enum Ev { Tick }
//!
//! impl World for Counter {
//!     type Event = Ev;
//!     fn handle(&mut self, now: SimTime, _ev: Ev, q: &mut EventQueue<Ev>) {
//!         self.fired += 1;
//!         if self.fired < 10 {
//!             q.schedule(now + SimDuration::from_millis(100), Ev::Tick);
//!         }
//!     }
//! }
//!
//! let mut w = Counter { fired: 0 };
//! let mut q = EventQueue::new();
//! q.schedule(SimTime::ZERO, Ev::Tick);
//! run_until(&mut w, &mut q, SimTime::from_secs(60));
//! assert_eq!(w.fired, 10);
//! ```

pub mod calendar;
pub mod clock;
pub mod engine;
pub mod event;
pub mod histogram;
pub mod pool;
pub mod rng;
pub mod stats;
pub mod time;

pub use calendar::{run_partition, Calendar, PartitionCalendar, PartitionWorld, Rail, WakeEvent};
pub use clock::{Clock, VirtualClock};
pub use engine::{run_to_completion, run_until, RunOutcome, World};
pub use event::{EventKey, EventQueue};
pub use histogram::LogHistogram;
pub use rng::SimRng;
pub use stats::OnlineStats;
pub use time::{SimDuration, SimTime};
