//! The calendar queue: a binary-heap priority queue of timestamped events
//! with deterministic FIFO tie-breaking.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// A scheduled entry. The firing time and FIFO sequence number are packed
/// into one `u128` — `(time << 64) | seq` — so heap sift compares cost a
/// single integer comparison instead of two chained `u64` compares on the
/// simulation's hottest path.
struct Entry<E> {
    key: u128,
    payload: E,
}

impl<E> Entry<E> {
    const fn key(at: SimTime, seq: u64) -> u128 {
        ((at.as_micros() as u128) << 64) | seq as u128
    }

    const fn at(&self) -> SimTime {
        SimTime::from_micros((self.key >> 64) as u64)
    }
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops
        // first. Sequence numbers guarantee a strict total order, so heap
        // internals can never introduce nondeterminism.
        other.key.cmp(&self.key)
    }
}

/// A deterministic future-event list.
///
/// Events scheduled for the same instant pop in the order they were
/// scheduled. Scheduling in the past is a logic error and panics in debug
/// builds; in release builds the event is clamped to "now" (the time of the
/// last popped event) to keep long experiments running.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    scheduled_total: u64,
    /// Time of the most recently popped event: the simulation's "now" from
    /// the queue's perspective, and the clamp floor for late schedules.
    floor: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Create an empty queue with pre-reserved capacity. Long-trace runs
    /// know their arrival count up front; reserving avoids re-growing the
    /// heap from zero through its largest size.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            scheduled_total: 0,
            floor: SimTime::ZERO,
        }
    }

    /// Schedule `payload` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        debug_assert!(
            at >= self.floor,
            "scheduling into the past: {at:?} < {:?}",
            self.floor
        );
        let at = at.max(self.floor);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry {
            key: Entry::<E>::key(at, seq),
            payload,
        });
    }

    /// Schedule `payload` to fire `delay` after `now`.
    pub fn schedule_in(&mut self, now: SimTime, delay: SimDuration, payload: E) {
        self.schedule(now + delay, payload);
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            let at = e.at();
            self.floor = at;
            (at, e.payload)
        })
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.at())
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (monotone; diagnostics only).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Drain every pending event in firing order.
    pub fn drain_ordered(&mut self) -> Vec<(SimTime, E)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some((t, e)) = self.pop() {
            out.push((t, e));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<_> = q.drain_ordered().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = q.drain_ordered().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_ties_still_fifo() {
        let mut q = EventQueue::new();
        let t1 = SimTime::from_millis(1);
        let t2 = SimTime::from_millis(2);
        q.schedule(t2, "t2-first");
        q.schedule(t1, "t1-first");
        q.schedule(t2, "t2-second");
        q.schedule(t1, "t1-second");
        let order: Vec<_> = q.drain_ordered().into_iter().map(|(_, e)| e).collect();
        assert_eq!(
            order,
            vec!["t1-first", "t1-second", "t2-first", "t2-second"]
        );
    }

    #[test]
    fn schedule_in_offsets_from_now() {
        let mut q = EventQueue::new();
        q.schedule_in(SimTime::from_millis(100), SimDuration::from_millis(50), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(150)));
    }

    #[test]
    fn len_and_counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn key_packing_round_trips() {
        let e = Entry {
            key: Entry::<()>::key(SimTime::from_micros(u64::MAX - 1), 42),
            payload: (),
        };
        assert_eq!(e.at(), SimTime::from_micros(u64::MAX - 1));
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduling into the past")]
    fn past_schedule_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "a");
        q.pop();
        q.schedule(SimTime::from_millis(5), "late");
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn past_schedule_clamps_in_release() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "a");
        q.pop();
        q.schedule(SimTime::from_millis(5), "late");
        let (t, e) = q.pop().expect("clamped event pending");
        assert_eq!(t, SimTime::from_millis(10));
        assert_eq!(e, "late");
    }
}
