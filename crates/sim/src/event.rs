//! The calendar queue: a binary-heap priority queue of timestamped events
//! with deterministic FIFO tie-breaking.

use crate::time::{SimDuration, SimTime};
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// The packed event ordering key: `(time_micros << 64) | seq`.
///
/// Ordering is the derived lexicographic order on the `u128`, which is a
/// provably total order — no float comparison, no `partial_cmp`, no
/// tie-breaking left to heap internals. Two keys with the same firing time
/// differ in their sequence number, so distinct schedules never compare
/// `Equal` and same-instant events pop in FIFO order. Packing both fields
/// into one integer also makes heap sift compares a single `u128`
/// comparison on the simulation's hottest path.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventKey(u128);

impl EventKey {
    /// Pack a firing time and FIFO sequence number.
    pub const fn new(at: SimTime, seq: u64) -> Self {
        EventKey(((at.as_micros() as u128) << 64) | seq as u128)
    }

    /// The firing time encoded in the key.
    pub fn time(self) -> SimTime {
        let micros = u64::try_from(self.0 >> 64)
            .expect("invariant: the high 64 bits of a packed key fit u64 by construction");
        SimTime::from_micros(micros)
    }

    /// The FIFO sequence number encoded in the key.
    pub fn seq(self) -> u64 {
        u64::try_from(self.0 & u128::from(u64::MAX))
            .expect("invariant: the low 64 bits of a packed key fit u64 by construction")
    }
}

/// A scheduled entry: ordering key plus payload.
struct Entry<E> {
    key: EventKey,
    payload: E,
}

impl<E> PartialEq for Entry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key
    }
}
impl<E> Eq for Entry<E> {}

impl<E> PartialOrd for Entry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<E> Ord for Entry<E> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert the (total) key order so the
        // earliest (time, seq) pops first.
        other.key.cmp(&self.key)
    }
}

/// A deterministic future-event list.
///
/// Events scheduled for the same instant pop in the order they were
/// scheduled. Scheduling in the past is a logic error and panics in debug
/// builds; in release builds the event is clamped to "now" (the time of the
/// last popped event) to keep long experiments running.
pub struct EventQueue<E> {
    heap: BinaryHeap<Entry<E>>,
    next_seq: u64,
    scheduled_total: u64,
    /// Time of the most recently popped event: the simulation's "now" from
    /// the queue's perspective, and the clamp floor for late schedules.
    floor: SimTime,
}

impl<E> Default for EventQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> EventQueue<E> {
    /// Create an empty queue.
    pub fn new() -> Self {
        Self::with_capacity(0)
    }

    /// Create an empty queue with pre-reserved capacity. Long-trace runs
    /// know their arrival count up front; reserving avoids re-growing the
    /// heap from zero through its largest size.
    pub fn with_capacity(cap: usize) -> Self {
        EventQueue {
            heap: BinaryHeap::with_capacity(cap),
            next_seq: 0,
            scheduled_total: 0,
            floor: SimTime::ZERO,
        }
    }

    /// Schedule `payload` to fire at absolute time `at`.
    pub fn schedule(&mut self, at: SimTime, payload: E) {
        debug_assert!(
            at >= self.floor,
            "scheduling into the past: {at:?} < {:?}",
            self.floor
        );
        let at = at.max(self.floor);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Entry {
            key: EventKey::new(at, seq),
            payload,
        });
    }

    /// Schedule `payload` to fire `delay` after `now`.
    pub fn schedule_in(&mut self, now: SimTime, delay: SimDuration, payload: E) {
        self.schedule(now + delay, payload);
    }

    /// Consume (and return) the next FIFO sequence number without pushing an
    /// event. The partitioned execution mode keeps some event classes out of
    /// the heap (pre-sorted arrival rails, per-worker wake registers) but
    /// must assign the remaining heap events the exact sequence numbers the
    /// serial engine would, so the `(time, seq)` total order — and therefore
    /// every tie-break — is bit-identical across modes.
    pub fn skip_seq(&mut self) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        seq
    }

    /// Consume `n` sequence numbers at once (see [`Self::skip_seq`]); used
    /// when a whole block of schedules — e.g. every pre-sampled arrival —
    /// is diverted out of the heap in one step.
    pub fn skip_seqs(&mut self, n: u64) {
        self.next_seq += n;
        self.scheduled_total += n;
    }

    /// Schedule `payload` at `at` under a sequence number reserved earlier
    /// with [`Self::skip_seq`]/[`Self::skip_seqs`].
    ///
    /// The incremental session executor (see `paldia-cluster`'s
    /// `SimSession`) learns of arrivals one at a time — from a socket or a
    /// replay file — yet must order them against calendar ticks exactly as
    /// the batch engine does, where every arrival is scheduled *before* the
    /// calendar is seeded and therefore owns a low sequence number. The
    /// session reserves the arrival seq block up front and reclaims each
    /// number here at injection time, so the `(time, seq)` total order is
    /// bit-identical to the batch run.
    ///
    /// `seq` must come from the reserved block (`seq < next_seq()`); it was
    /// already counted by the reservation, so `scheduled_total` does not
    /// move. Late injection clamps to the floor like [`Self::schedule`].
    pub fn schedule_reserved(&mut self, at: SimTime, seq: u64, payload: E) {
        debug_assert!(
            seq < self.next_seq,
            "reserved seq {seq} was never reserved (next_seq {})",
            self.next_seq
        );
        debug_assert!(
            at >= self.floor,
            "scheduling into the past: {at:?} < {:?}",
            self.floor
        );
        let at = at.max(self.floor);
        self.heap.push(Entry {
            key: EventKey::new(at, seq),
            payload,
        });
    }

    /// The sequence number the next schedule will receive.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// The full ordering key of the earliest pending event.
    pub fn peek_key(&self) -> Option<EventKey> {
        self.heap.peek().map(|e| e.key)
    }

    /// The clamp floor: the time of the most recently popped event.
    pub fn floor(&self) -> SimTime {
        self.floor
    }

    /// Advance the clamp floor to `at`, as [`Self::pop`] would. The
    /// partitioned run loop calls this when it dispatches an event from a
    /// source other than this heap (rail, wake register), so late-schedule
    /// detection keeps working against the true simulation clock.
    pub fn advance_floor(&mut self, at: SimTime) {
        debug_assert!(
            at >= self.floor,
            "floor moving backwards: {at:?} < {:?}",
            self.floor
        );
        if at > self.floor {
            self.floor = at;
        }
    }

    /// Remove and return the earliest event, if any.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.heap.pop().map(|e| {
            let at = e.key.time();
            self.floor = at;
            (at, e.payload)
        })
    }

    /// The time of the earliest pending event.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|e| e.key.time())
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events ever scheduled (monotone; diagnostics only).
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }

    /// Drop all pending events.
    pub fn clear(&mut self) {
        self.heap.clear();
    }

    /// Drain every pending event in firing order.
    pub fn drain_ordered(&mut self) -> Vec<(SimTime, E)> {
        let mut out = Vec::with_capacity(self.heap.len());
        while let Some((t, e)) = self.pop() {
            out.push((t, e));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(30), "c");
        q.schedule(SimTime::from_millis(10), "a");
        q.schedule(SimTime::from_millis(20), "b");
        let order: Vec<_> = q.drain_ordered().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec!["a", "b", "c"]);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        let t = SimTime::from_millis(5);
        for i in 0..100 {
            q.schedule(t, i);
        }
        let order: Vec<_> = q.drain_ordered().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn interleaved_ties_still_fifo() {
        let mut q = EventQueue::new();
        let t1 = SimTime::from_millis(1);
        let t2 = SimTime::from_millis(2);
        q.schedule(t2, "t2-first");
        q.schedule(t1, "t1-first");
        q.schedule(t2, "t2-second");
        q.schedule(t1, "t1-second");
        let order: Vec<_> = q.drain_ordered().into_iter().map(|(_, e)| e).collect();
        assert_eq!(
            order,
            vec!["t1-first", "t1-second", "t2-first", "t2-second"]
        );
    }

    #[test]
    fn schedule_in_offsets_from_now() {
        let mut q = EventQueue::new();
        q.schedule_in(SimTime::from_millis(100), SimDuration::from_millis(50), ());
        assert_eq!(q.peek_time(), Some(SimTime::from_millis(150)));
    }

    #[test]
    fn len_and_counters() {
        let mut q = EventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, 1);
        q.schedule(SimTime::ZERO, 2);
        assert_eq!(q.len(), 2);
        assert_eq!(q.scheduled_total(), 2);
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
        q.clear();
        assert!(q.is_empty());
    }

    #[test]
    fn reserved_seqs_win_time_ties_against_later_schedules() {
        let mut q = EventQueue::new();
        q.skip_seqs(2); // reserve seqs 0 and 1 for late-arriving injections
        let t = SimTime::from_millis(7);
        q.schedule(t, "tick"); // seq 2
        q.schedule_reserved(t, 0, "arrival-0");
        q.schedule_reserved(t, 1, "arrival-1");
        let order: Vec<_> = q.drain_ordered().into_iter().map(|(_, e)| e).collect();
        assert_eq!(order, vec!["arrival-0", "arrival-1", "tick"]);
        assert_eq!(q.scheduled_total(), 3, "reservation counted the block once");
    }

    #[test]
    fn key_packing_round_trips() {
        let k = EventKey::new(SimTime::from_micros(u64::MAX - 1), 42);
        assert_eq!(k.time(), SimTime::from_micros(u64::MAX - 1));
        assert_eq!(k.seq(), 42);
    }

    #[test]
    fn key_order_is_time_major_then_fifo() {
        let a = EventKey::new(SimTime::from_micros(1), u64::MAX);
        let b = EventKey::new(SimTime::from_micros(2), 0);
        assert!(a < b, "earlier time wins regardless of seq");
        let c = EventKey::new(SimTime::from_micros(2), 1);
        assert!(b < c, "same time breaks ties by schedule order");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "scheduling into the past")]
    fn past_schedule_panics_in_debug() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "a");
        q.pop();
        q.schedule(SimTime::from_millis(5), "late");
    }

    #[test]
    #[cfg(not(debug_assertions))]
    fn past_schedule_clamps_in_release() {
        let mut q = EventQueue::new();
        q.schedule(SimTime::from_millis(10), "a");
        q.pop();
        q.schedule(SimTime::from_millis(5), "late");
        let (t, e) = q.pop().expect("clamped event pending");
        assert_eq!(t, SimTime::from_millis(10));
        assert_eq!(e, "late");
    }
}
