//! A small, self-contained, deterministic random number generator.
//!
//! We implement xoshiro256++ (Blackman & Vigna) seeded through SplitMix64
//! rather than pulling a full RNG crate into every simulation crate. The
//! sequence is fixed by construction, so experiment results are reproducible
//! across platforms and toolchain upgrades — a hard requirement for the
//! paper-reproduction harness, which pins expected metric values.
//!
//! Distribution helpers cover everything the traces and workloads need:
//! uniform, exponential (inter-arrival times), Poisson (per-bin arrival
//! counts), and normal (noise on diurnal traces).

/// xoshiro256++ generator with SplitMix64 seeding.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s }
    }

    /// Derive an independent child generator. Used to give each repetition /
    /// model / node its own stream without correlation.
    pub fn fork(&mut self, label: u64) -> SimRng {
        let a = self.next_u64();
        SimRng::new(a ^ label.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    /// Next raw 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform double in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)` (Lemire's method; `bound` > 0).
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "next_below requires a positive bound");
        // Rejection-free-ish multiply-shift; bias is negligible for the
        // bounds used here (< 2^32) but we reject to be exact.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound || low >= x.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform double in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.next_f64()
    }

    /// Exponentially distributed sample with the given rate (events per unit
    /// time). Returns `f64::INFINITY` for a zero rate.
    pub fn exponential(&mut self, rate: f64) -> f64 {
        if rate <= 0.0 {
            return f64::INFINITY;
        }
        // Inverse-CDF; 1 - u avoids ln(0).
        -(1.0 - self.next_f64()).ln() / rate
    }

    /// Poisson-distributed sample with the given mean.
    ///
    /// Knuth's product method for small means; for large means we use the
    /// normal approximation with continuity correction (error is far below
    /// the run-to-run variance of the experiments).
    pub fn poisson(&mut self, mean: f64) -> u64 {
        if mean <= 0.0 {
            return 0;
        }
        if mean < 30.0 {
            let l = (-mean).exp();
            let mut k = 0u64;
            let mut p = 1.0;
            loop {
                p *= self.next_f64();
                if p <= l {
                    return k;
                }
                k += 1;
                // No separate underflow guard is needed: `l` is strictly
                // positive for mean < 30, so a `p` that underflows to zero
                // already satisfied `p <= l` above.
            }
        } else {
            let x = mean + mean.sqrt() * self.normal() + 0.5;
            if x < 0.0 {
                0
            } else {
                x as u64
            }
        }
    }

    /// Standard normal sample (Box–Muller, one value per call).
    pub fn normal(&mut self) -> f64 {
        // Draw until u1 is nonzero to keep ln finite.
        let mut u1 = self.next_f64();
        while u1 <= f64::MIN_POSITIVE {
            u1 = self.next_f64();
        }
        let u2 = self.next_f64();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Normal sample with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Bernoulli trial with probability `p`.
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn unit_interval() {
        let mut rng = SimRng::new(7);
        for _ in 0..10_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_in_range_and_covers() {
        let mut rng = SimRng::new(11);
        let mut seen = [false; 10];
        for _ in 0..10_000 {
            let x = rng.next_below(10) as usize;
            assert!(x < 10);
            seen[x] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn exponential_mean_close() {
        let mut rng = SimRng::new(13);
        let rate = 4.0;
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(rate)).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.25).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn exponential_zero_rate_is_infinite() {
        let mut rng = SimRng::new(13);
        assert!(rng.exponential(0.0).is_infinite());
    }

    #[test]
    fn poisson_small_mean() {
        let mut rng = SimRng::new(17);
        let mean = 3.5;
        let n = 50_000;
        let sum: u64 = (0..n).map(|_| rng.poisson(mean)).sum();
        let observed = sum as f64 / n as f64;
        assert!((observed - mean).abs() < 0.1, "observed {observed}");
    }

    #[test]
    fn poisson_large_mean_uses_normal_approx() {
        let mut rng = SimRng::new(19);
        let mean = 700.0;
        let n = 20_000;
        let sum: u64 = (0..n).map(|_| rng.poisson(mean)).sum();
        let observed = sum as f64 / n as f64;
        assert!((observed - mean).abs() < 2.0, "observed {observed}");
    }

    #[test]
    fn poisson_zero_mean() {
        let mut rng = SimRng::new(19);
        assert_eq!(rng.poisson(0.0), 0);
        assert_eq!(rng.poisson(-1.0), 0);
    }

    #[test]
    fn normal_moments() {
        let mut rng = SimRng::new(23);
        let n = 100_000;
        let samples: Vec<f64> = (0..n).map(|_| rng.normal()).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn fork_is_independent() {
        let mut parent = SimRng::new(99);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        let same = (0..100).filter(|_| c1.next_u64() == c2.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SimRng::new(31);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn chance_frequency() {
        let mut rng = SimRng::new(37);
        let hits = (0..100_000).filter(|_| rng.chance(0.2)).count();
        let freq = hits as f64 / 100_000.0;
        assert!((freq - 0.2).abs() < 0.01, "freq {freq}");
    }
}
