//! The partitioned calendar: the per-partition event sources of the
//! sharded execution mode, plus the merged run loop that drives them.
//!
//! The serial engine keeps every future event in one binary heap
//! ([`EventQueue`]). That is simple and exactly ordered, but for
//! trace-driven runs the heap is dominated by two event classes with much
//! cheaper natural representations:
//!
//! * **Arrivals** are pre-sampled in full before the run starts. Scheduling
//!   half a million of them leaves a huge resident heap that every other
//!   push/pop must sift through. A [`Rail`] stores them pre-sorted and pops
//!   them by cursor in O(1).
//! * **Device wake-ups** are mostly stale: every occupancy change re-arms
//!   the wake for a worker's next predicted completion and bumps a version,
//!   so the heap fills with superseded wakes that pop as no-ops. A
//!   per-worker wake register keeps only the *live* wake per worker and
//!   drops superseded ones at arm time.
//!
//! The merged loop ([`run_partition`]) dispatches from whichever source
//! holds the globally smallest `(time, seq)` key. Determinism is preserved
//! bit-for-bit by *virtual sequence parity*: every schedule the serial
//! engine would perform still consumes a sequence number here
//! ([`EventQueue::skip_seq`]), whether or not an entry lands in the heap,
//! so surviving heap events carry identical keys in both modes and every
//! same-instant tie breaks the same way. Rail entries occupy the first
//! sequence numbers of the run (arrivals are scheduled before anything
//! else), so the rail wins every equal-time comparison without storing a
//! sequence per entry.
//!
//! Dropping superseded wakes is safe because a wake whose version no longer
//! matches its device is an observable no-op in the serial engine (the
//! handler returns before any effect), and a re-armed wake for an
//! *unchanged* version predicts the same completion instant — the earlier
//! of the two entries does the work in both modes (the register keeps it;
//! see [`PartitionCalendar::arm_wake`]).

use crate::engine::{RunOutcome, World};
use crate::event::{EventKey, EventQueue};
use crate::time::{SimDuration, SimTime};
use std::cmp::Reverse;
use std::collections::{BTreeMap, BinaryHeap};

/// Event alphabets that carry a device wake-up variant. Lets a calendar
/// materialize the wake event itself, so wake registers can store two
/// integers instead of a payload.
pub trait WakeEvent: Sized {
    /// Build the wake event for `worker` at device `version`.
    fn make_wake(worker: u32, version: u64) -> Self;
}

/// What a simulation world schedules against: the serial [`EventQueue`] or
/// the partitioned [`PartitionCalendar`]. Domain logic written against this
/// trait runs unchanged — and bit-identically — on either engine.
pub trait Calendar<E> {
    /// Schedule `payload` to fire at absolute time `at`.
    fn schedule(&mut self, at: SimTime, payload: E);

    /// Schedule `payload` to fire `delay` after `now`.
    fn schedule_in(&mut self, now: SimTime, delay: SimDuration, payload: E) {
        self.schedule(now + delay, payload);
    }

    /// Arm (or re-arm) the completion wake-up for `worker` at `at`, tagged
    /// with the device `version` current at arm time.
    fn arm_wake(&mut self, worker: u32, at: SimTime, version: u64);
}

impl<E: WakeEvent> Calendar<E> for EventQueue<E> {
    fn schedule(&mut self, at: SimTime, payload: E) {
        EventQueue::schedule(self, at, payload);
    }

    fn arm_wake(&mut self, worker: u32, at: SimTime, version: u64) {
        EventQueue::schedule(self, at, E::make_wake(worker, version));
    }
}

/// The pre-sorted arrival rail: events known in full before the run starts,
/// holding the run's smallest sequence numbers. Popping is a cursor
/// decrement — no heap traffic, no sift, sequential memory.
pub struct Rail<E> {
    /// Sorted by firing time *descending* (stable w.r.t. schedule order),
    /// so `pop` takes from the back in FIFO `(time, seq)` order.
    items: Vec<(SimTime, E)>,
}

impl<E> Rail<E> {
    /// Build a rail from entries in schedule order. The caller must have
    /// consumed one sequence number per entry (before scheduling anything
    /// else) via [`EventQueue::skip_seqs`], so rail entries order before
    /// every heap event at equal times.
    pub fn from_schedule_order(mut items: Vec<(SimTime, E)>) -> Self {
        // Stable sort keeps schedule order within a tie; reversing then
        // makes `Vec::pop` yield earliest-first with FIFO ties.
        items.sort_by_key(|&(t, _)| t);
        items.reverse();
        Rail { items }
    }

    /// Firing time of the earliest pending entry.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.items.last().map(|&(t, _)| t)
    }

    /// Remove and return the earliest entry.
    pub fn pop(&mut self) -> Option<(SimTime, E)> {
        self.items.pop()
    }

    /// Number of pending entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// True if no entries are pending.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// One armed wake register: ordering key plus device version.
type WakeSlot = (EventKey, u64);

/// The partitioned calendar: a (small) heap for ordinary events plus the
/// per-worker wake registers. Arrivals live outside in a [`Rail`].
pub struct PartitionCalendar<E> {
    q: EventQueue<E>,
    /// Live wake per worker id; absent when nothing is armed. Keyed
    /// sparsely: sharded fleets namespace worker ids as
    /// `(global deployment << 20) | ordinal`, so a dense table would
    /// span gigabytes while only a handful of ids are ever live.
    slots: BTreeMap<u32, WakeSlot>,
    /// Min-index over the slots, invalidated lazily: an entry counts only
    /// while it still matches its slot exactly.
    order: BinaryHeap<Reverse<(EventKey, u32, u64)>>,
}

impl<E> PartitionCalendar<E> {
    /// Wrap a queue (which may already hold events and consumed sequence
    /// numbers from setup).
    pub fn new(q: EventQueue<E>) -> Self {
        PartitionCalendar {
            q,
            slots: BTreeMap::new(),
            order: BinaryHeap::new(),
        }
    }

    /// The inner heap queue.
    pub fn queue(&self) -> &EventQueue<E> {
        &self.q
    }

    /// The inner heap queue, mutably.
    pub fn queue_mut(&mut self) -> &mut EventQueue<E> {
        &mut self.q
    }

    /// Key of the earliest *live* armed wake, discarding superseded index
    /// entries on the way.
    fn peek_wake(&mut self) -> Option<EventKey> {
        while let Some(&Reverse((key, worker, version))) = self.order.peek() {
            if self.slots.get(&worker) == Some(&(key, version)) {
                return Some(key);
            }
            self.order.pop();
        }
        None
    }

    /// Pop the earliest live wake (the caller must have just seen it via
    /// `peek_wake`), clearing its register.
    fn pop_wake(&mut self) -> Option<(EventKey, u32, u64)> {
        let key = self.peek_wake()?;
        let Reverse((k, worker, version)) = self.order.pop()?;
        debug_assert_eq!(k, key);
        self.slots.remove(&worker);
        Some((k, worker, version))
    }
}

impl<E: WakeEvent> Calendar<E> for PartitionCalendar<E> {
    fn schedule(&mut self, at: SimTime, payload: E) {
        EventQueue::schedule(&mut self.q, at, payload);
    }

    fn arm_wake(&mut self, worker: u32, at: SimTime, version: u64) {
        // Every arm consumes a sequence number — the serial engine would
        // push a heap event here — regardless of whether the register
        // changes, keeping later schedules' keys identical across modes.
        let seq = self.q.skip_seq();
        let key = EventKey::new(at.max(self.q.floor()), seq);
        match self.slots.get(&worker) {
            // Same device version ⇒ the device is untouched since the
            // earlier arm, which therefore predicts the same instant with a
            // smaller seq. The earlier entry does the work in the serial
            // engine (the later pops as a stale no-op after the earlier
            // bumped the version) — keep it.
            Some(&(_, armed_version)) if armed_version == version => {}
            // New version ⇒ any previously armed wake is superseded: when
            // it would fire, its version can no longer match (versions only
            // grow), so the serial engine treats it as a no-op. Replace.
            _ => {
                self.slots.insert(worker, (key, version));
                self.order.push(Reverse((key, worker, version)));
            }
        }
    }
}

/// A [`World`] that can also run on the partitioned calendar. Implementors
/// route both entry points through one generic handler over [`Calendar`],
/// so the domain logic exists exactly once.
pub trait PartitionWorld: World {
    /// Process one event, scheduling follow-ups on the partitioned
    /// calendar.
    fn handle_part(
        &mut self,
        now: SimTime,
        ev: Self::Event,
        cal: &mut PartitionCalendar<Self::Event>,
    );
}

/// Run one partition until `bound` (exclusive, a full `(time, seq)` key) or
/// until every source drains. Dispatches rail entries, heap events, and
/// live wakes in exact global `(time, seq)` order; superseded wakes are
/// never dispatched.
///
/// Bounding on a key rather than a time lets the fleet coordinator stop a
/// partition *between* two same-instant events — everything ordered before
/// a cross-partition fault edge runs, everything after waits for the
/// barrier. For a plain horizon, pass `EventKey::new(horizon, 0)`
/// (exclusive, like [`crate::engine::run_until`]); the loop is resumable.
pub fn run_partition<W>(
    world: &mut W,
    cal: &mut PartitionCalendar<W::Event>,
    rail: &mut Rail<W::Event>,
    bound: EventKey,
    budget: u64,
) -> RunOutcome
where
    W: PartitionWorld,
    W::Event: WakeEvent,
{
    let mut events: u64 = 0;
    let mut last_event = SimTime::ZERO;
    loop {
        // The rail holds the run's smallest seqs: a proxy seq of 0 orders
        // it before any heap/wake key at the same instant. (Heap seqs are
        // strictly positive whenever the rail is non-empty, because the
        // rail consumed seqs first.)
        let rail_key = rail.peek_time().map(|t| EventKey::new(t, 0));
        let heap_key = cal.q.peek_key();
        let wake_key = cal.peek_wake();

        let Some(next) = [rail_key, heap_key, wake_key].into_iter().flatten().min() else {
            return RunOutcome::Drained { last_event, events };
        };
        if next >= bound {
            return RunOutcome::HorizonReached {
                horizon: bound.time(),
                events,
            };
        }
        if events >= budget {
            return RunOutcome::BudgetExhausted {
                at: next.time(),
                budget,
            };
        }

        if rail_key == Some(next) {
            let (now, ev) = rail.pop().expect("invariant: peeked rail entry exists");
            cal.q.advance_floor(now);
            debug_assert!(now >= last_event, "time went backwards");
            last_event = now;
            events += 1;
            world.handle_part(now, ev, cal);
        } else if heap_key == Some(next) {
            let (now, ev) = cal.q.pop().expect("invariant: peeked heap entry exists");
            debug_assert!(now >= last_event, "time went backwards");
            last_event = now;
            events += 1;
            world.handle_part(now, ev, cal);
        } else {
            let (key, worker, version) =
                cal.pop_wake().expect("invariant: peeked wake entry exists");
            let now = key.time();
            cal.q.advance_floor(now);
            debug_assert!(now >= last_event, "time went backwards");
            last_event = now;
            events += 1;
            world.handle_part(now, W::Event::make_wake(worker, version), cal);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::run_until;

    /// A miniature versioned-device world exercised on both engines: `n`
    /// workers each hold a version counter; arrivals bump a worker's
    /// version and re-arm its wake for `now + latency`; live wakes record
    /// and re-arm once more at double latency. Superseded and duplicate
    /// wakes must behave identically across engines.
    #[derive(Clone, Debug, PartialEq, Eq)]
    enum Ev {
        Arrival { worker: u32 },
        Tick(u32),
        Wake { worker: u32, version: u64 },
    }

    impl WakeEvent for Ev {
        fn make_wake(worker: u32, version: u64) -> Self {
            Ev::Wake { worker, version }
        }
    }

    struct Mini {
        versions: Vec<u64>,
        /// (time_micros, label, worker, version-at-dispatch)
        log: Vec<(u64, &'static str, u32, u64)>,
    }

    impl Mini {
        fn new(workers: usize) -> Self {
            Mini {
                versions: vec![0; workers],
                log: Vec::new(),
            }
        }

        fn on_event<C: Calendar<Ev>>(&mut self, now: SimTime, ev: Ev, q: &mut C) {
            match ev {
                Ev::Arrival { worker } => {
                    self.versions[worker as usize] += 1;
                    let v = self.versions[worker as usize];
                    self.log.push((now.as_micros(), "arrival", worker, v));
                    q.arm_wake(worker, now + SimDuration::from_micros(50), v);
                    // A duplicate same-version arm, as a jittery harness
                    // would produce: must be dropped/no-op identically.
                    q.arm_wake(worker, now + SimDuration::from_micros(50), v);
                }
                Ev::Tick(n) => {
                    self.log.push((now.as_micros(), "tick", n, 0));
                    if n > 0 {
                        q.schedule_in(now, SimDuration::from_micros(30), Ev::Tick(n - 1));
                    }
                }
                Ev::Wake { worker, version } => {
                    if self.versions[worker as usize] != version {
                        return; // stale
                    }
                    self.log.push((now.as_micros(), "wake", worker, version));
                    self.versions[worker as usize] += 1;
                    let v = self.versions[worker as usize];
                    q.arm_wake(worker, now + SimDuration::from_micros(100), v);
                }
            }
        }
    }

    impl World for Mini {
        type Event = Ev;
        fn handle(&mut self, now: SimTime, ev: Ev, q: &mut EventQueue<Ev>) {
            self.on_event(now, ev, q);
        }
    }

    impl PartitionWorld for Mini {
        fn handle_part(&mut self, now: SimTime, ev: Ev, cal: &mut PartitionCalendar<Ev>) {
            self.on_event(now, ev, cal);
        }
    }

    fn arrivals() -> Vec<(SimTime, Ev)> {
        let mut v = Vec::new();
        for i in 0..200u64 {
            // Deliberate time collisions across workers.
            let t = SimTime::from_micros(7 * (i / 3) + 1);
            v.push((
                t,
                Ev::Arrival {
                    worker: (i % 3) as u32,
                },
            ));
        }
        v
    }

    fn run_serial(horizon: SimTime) -> Vec<(u64, &'static str, u32, u64)> {
        let mut w = Mini::new(3);
        let mut q = EventQueue::new();
        for (t, ev) in arrivals() {
            q.schedule(t, ev);
        }
        q.schedule(SimTime::from_micros(5), Ev::Tick(40));
        run_until(&mut w, &mut q, horizon);
        w.log
    }

    fn run_part(horizon: SimTime) -> Vec<(u64, &'static str, u32, u64)> {
        let mut w = Mini::new(3);
        let mut q = EventQueue::new();
        let items = arrivals();
        q.skip_seqs(items.len() as u64);
        q.schedule(SimTime::from_micros(5), Ev::Tick(40));
        let mut cal = PartitionCalendar::new(q);
        let mut rail = Rail::from_schedule_order(items);
        run_partition(
            &mut w,
            &mut cal,
            &mut rail,
            EventKey::new(horizon, 0),
            u64::MAX,
        );
        w.log
    }

    #[test]
    fn partitioned_replay_is_bit_identical_to_serial() {
        let horizon = SimTime::from_secs(10);
        assert_eq!(run_serial(horizon), run_part(horizon));
    }

    #[test]
    fn mid_run_bound_preserves_prefix_order() {
        let horizon = SimTime::from_micros(300);
        let serial = run_serial(horizon);
        let part = run_part(horizon);
        assert!(!serial.is_empty());
        assert_eq!(serial, part);
    }

    #[test]
    fn rail_pops_fifo_within_ties() {
        let mut rail = Rail::from_schedule_order(vec![
            (SimTime::from_micros(5), "b"),
            (SimTime::from_micros(1), "a"),
            (SimTime::from_micros(5), "c"),
        ]);
        assert_eq!(rail.len(), 3);
        assert_eq!(rail.pop(), Some((SimTime::from_micros(1), "a")));
        assert_eq!(rail.pop(), Some((SimTime::from_micros(5), "b")));
        assert_eq!(rail.pop(), Some((SimTime::from_micros(5), "c")));
        assert!(rail.is_empty());
    }

    #[test]
    fn superseded_wakes_are_never_dispatched() {
        // Arm twice with different versions: only the second survives.
        let mut cal: PartitionCalendar<Ev> = PartitionCalendar::new(EventQueue::new());
        cal.arm_wake(0, SimTime::from_micros(10), 1);
        cal.arm_wake(0, SimTime::from_micros(20), 2);
        assert_eq!(
            cal.peek_wake().map(|k| (k.time(), k.seq())),
            Some((SimTime::from_micros(20), 1))
        );
        let (key, worker, version) = cal.pop_wake().unwrap();
        assert_eq!(
            (key.time(), worker, version),
            (SimTime::from_micros(20), 0, 2)
        );
        assert_eq!(cal.peek_wake(), None);
    }

    #[test]
    fn same_version_rearm_keeps_the_earlier_entry() {
        let mut cal: PartitionCalendar<Ev> = PartitionCalendar::new(EventQueue::new());
        cal.arm_wake(4, SimTime::from_micros(10), 7);
        cal.arm_wake(4, SimTime::from_micros(10), 7);
        let (key, worker, version) = cal.pop_wake().unwrap();
        // seq 0 = the first arm; the duplicate consumed seq 1 silently.
        assert_eq!(key.seq(), 0);
        assert_eq!((worker, version), (4, 7));
        assert_eq!(cal.queue().next_seq(), 2);
        assert_eq!(cal.pop_wake(), None);
    }
}
