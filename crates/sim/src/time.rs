//! Simulation time types.
//!
//! Time is a `u64` count of **microseconds** since the start of the
//! simulation. Microsecond resolution is fine-grained enough for the
//! millisecond-scale inference latencies in the paper (SLO = 200 ms) while
//! leaving headroom for multi-day traces (the 5-day Wikipedia trace is
//! ~4.3 × 10^11 µs, far below `u64::MAX`).
//!
//! All scheduler math in the upper layers is done in `f64` milliseconds and
//! converted at the edges via [`SimDuration::from_millis_f64`] /
//! [`SimDuration::as_millis_f64`].

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in simulated time (microseconds since simulation start).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

/// A span of simulated time (microseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(pub u64);

impl SimTime {
    /// The origin of simulated time.
    pub const ZERO: SimTime = SimTime(0);
    /// The greatest representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimTime(s * 1_000_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us)
    }

    /// Microseconds since simulation start.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Time since start, in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Time since start, in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time since start, in fractional hours (used by cost accounting).
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000_000.0
    }

    /// Duration elapsed since `earlier`. Saturates at zero if `earlier` is in
    /// the future (callers occasionally race a completion against a tick).
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition of a duration.
    pub fn checked_add(self, d: SimDuration) -> Option<SimTime> {
        self.0.checked_add(d.0).map(SimTime)
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from whole seconds.
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000)
    }

    /// Construct from whole milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000)
    }

    /// Construct from whole microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimDuration(us)
    }

    /// Construct from fractional milliseconds, rounding to the nearest
    /// microsecond and clamping negatives to zero.
    pub fn from_millis_f64(ms: f64) -> Self {
        if !ms.is_finite() || ms <= 0.0 {
            return SimDuration::ZERO;
        }
        // Rounded float-to-int conversion saturates deterministically; the
        // guard above already rejected non-finite and negative inputs.
        SimDuration((ms * 1_000.0).round() as u64) // lint:allow(r2)
    }

    /// Construct from fractional seconds (clamping negatives to zero).
    pub fn from_secs_f64(s: f64) -> Self {
        Self::from_millis_f64(s * 1_000.0)
    }

    /// Length in microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Length in fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Length in fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Length in fractional hours.
    pub fn as_hours_f64(self) -> f64 {
        self.0 as f64 / 3_600_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// True if this duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(rhs.0))
    }
}

impl SubAssign for SimDuration {
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 = self.0.saturating_sub(rhs.0);
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t+{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total_ms = self.as_millis_f64();
        if total_ms >= 60_000.0 {
            write!(f, "{:.2}min", total_ms / 60_000.0)
        } else if total_ms >= 1_000.0 {
            write!(f, "{:.2}s", total_ms / 1_000.0)
        } else {
            write!(f, "{total_ms:.3}ms")
        }
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(2).as_micros(), 2_000_000);
        assert_eq!(SimTime::from_millis(5).as_micros(), 5_000);
        assert_eq!(SimDuration::from_secs(1).as_millis_f64(), 1_000.0);
        assert_eq!(SimDuration::from_millis(200).as_secs_f64(), 0.2);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_millis(100) + SimDuration::from_millis(50);
        assert_eq!(t, SimTime::from_millis(150));
        assert_eq!(t - SimTime::from_millis(100), SimDuration::from_millis(50));
        assert_eq!(
            SimDuration::from_millis(10) * 3,
            SimDuration::from_millis(30)
        );
        assert_eq!(
            SimDuration::from_millis(30) / 3,
            SimDuration::from_millis(10)
        );
    }

    #[test]
    fn subtraction_saturates() {
        let a = SimTime::from_millis(10);
        let b = SimTime::from_millis(20);
        assert_eq!(a - b, SimDuration::ZERO);
        assert_eq!(a.saturating_since(b), SimDuration::ZERO);
        assert_eq!(b.saturating_since(a), SimDuration::from_millis(10));
    }

    #[test]
    fn fractional_millis_conversion() {
        let d = SimDuration::from_millis_f64(1.5);
        assert_eq!(d.as_micros(), 1_500);
        assert_eq!(d.as_millis_f64(), 1.5);
        // Negative and non-finite inputs clamp to zero.
        assert_eq!(SimDuration::from_millis_f64(-3.0), SimDuration::ZERO);
        assert_eq!(SimDuration::from_millis_f64(f64::NAN), SimDuration::ZERO);
    }

    #[test]
    fn hours_conversion_for_cost_accounting() {
        let one_hour = SimDuration::from_secs(3600);
        assert!((one_hour.as_hours_f64() - 1.0).abs() < 1e-12);
        assert!((SimTime::from_secs(1800).as_hours_f64() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn display_scales_units() {
        assert_eq!(format!("{}", SimTime::from_millis(3)), "3.000ms");
        assert_eq!(format!("{}", SimTime::from_secs(2)), "2.00s");
        assert_eq!(format!("{}", SimTime::from_secs(120)), "2.00min");
    }

    #[test]
    fn ordering_is_total() {
        let mut v = vec![
            SimTime::from_millis(3),
            SimTime::ZERO,
            SimTime::from_secs(1),
        ];
        v.sort();
        assert_eq!(
            v,
            vec![
                SimTime::ZERO,
                SimTime::from_millis(3),
                SimTime::from_secs(1)
            ]
        );
    }
}
