//! Vendored, dependency-free stand-in for the `proptest` crate.
//!
//! The workspace builds in an offline container where the crates.io mirror
//! is unreachable, so the real `proptest` cannot be fetched. This shim
//! implements exactly the subset of the API the repo's property tests use:
//!
//! - the `proptest! { fn name(arg in strategy, ...) { .. } }` macro
//! - `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!`
//! - integer/float `Range` strategies, `any::<T>()`, tuple strategies
//! - `proptest::collection::vec` and `prop::sample::select`
//!
//! Generation is deterministic: each test derives its RNG seed from its
//! module path and name, so failures reproduce exactly across runs. Case
//! count defaults to 64 and honours `PROPTEST_CASES`. There is no input
//! shrinking — on failure the case index and message are reported instead.

pub mod test_runner {
    use std::fmt;

    /// Error type carried by `prop_assert!` failures out of a test case body.
    #[derive(Debug, Clone)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }

    /// Number of generated cases per property (default 64, `PROPTEST_CASES`
    /// to override).
    pub fn cases() -> u64 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .filter(|&n| n > 0)
            .unwrap_or(64)
    }

    /// Deterministic splitmix64 generator seeded from the test's name.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        pub fn from_name(name: &str) -> Self {
            // FNV-1a over the fully-qualified test name.
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform draw in `[0, bound)`. Modulo bias is acceptable for tests.
        pub fn next_below(&mut self, bound: u64) -> u64 {
            debug_assert!(bound > 0);
            self.next_u64() % bound
        }

        /// Uniform draw in `[0, 1)` with 53 bits of precision.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod strategy {
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;
    use std::ops::Range;

    /// A value generator. Mirrors `proptest::strategy::Strategy` minus
    /// shrinking: `generate` replaces the value-tree machinery.
    pub trait Strategy {
        type Value;
        fn generate(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! uint_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end as u64 - self.start as u64;
                    self.start + rng.next_below(span) as $t
                }
            }
        )+};
    }
    uint_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! sint_range_strategy {
        ($($t:ty),+) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                    (self.start as i64).wrapping_add(rng.next_below(span) as i64) as $t
                }
            }
        )+};
    }
    sint_range_strategy!(i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + rng.unit_f64() * (self.end - self.start)
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut TestRng) -> f32 {
            assert!(self.start < self.end, "empty range strategy");
            self.start + (rng.unit_f64() as f32) * (self.end - self.start)
        }
    }

    /// Always yields a clone of the same value (`proptest::strategy::Just`).
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Types with a canonical "whole domain" strategy (`any::<T>()`).
    pub trait Arbitrary {
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arbitrary_uint {
        ($($t:ty),+) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )+};
    }
    arbitrary_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> f64 {
            // Finite values only; NaN/inf generation is not useful for the
            // numeric properties this workspace tests.
            (rng.unit_f64() - 0.5) * 2e12
        }
    }

    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }

    macro_rules! tuple_strategy {
        ($(($($s:ident),+))+) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($s,)+) = self;
                    ($($s.generate(rng),)+)
                }
            }
        )+};
    }
    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
        (A, B, C, D, E, F, G)
        (A, B, C, D, E, F, G, H)
    }
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    /// `proptest::collection::vec`: a vector whose length is drawn from
    /// `size` and whose elements come from `element`.
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        assert!(size.start < size.end, "empty size range");
        VecStrategy { element, size }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.end - self.size.start) as u64;
            let len = self.size.start + rng.next_below(span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    pub struct Select<T: Clone>(Vec<T>);

    /// `prop::sample::select`: uniform draw from a fixed set of values.
    pub fn select<T: Clone>(items: Vec<T>) -> Select<T> {
        assert!(!items.is_empty(), "select requires at least one item");
        Select(items)
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            self.0[rng.next_below(self.0.len() as u64) as usize].clone()
        }
    }
}

pub mod prelude {
    pub use crate::strategy::{any, Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};

    /// Mirror of `proptest::prelude::prop`: module-path access to the
    /// non-prelude strategy constructors.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {$(
        $(#[$meta])*
        #[test]
        fn $name() {
            let __cases = $crate::test_runner::cases();
            let mut __rng = $crate::test_runner::TestRng::from_name(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            let __strategies = ($($strat,)+);
            for __case in 0..__cases {
                let ($($arg,)+) =
                    $crate::strategy::Strategy::generate(&__strategies, &mut __rng);
                let __outcome = (|| -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(__err) = __outcome {
                    panic!(
                        "property failed at case {}/{} (seeded from test name): {}",
                        __case + 1,
                        __cases,
                        __err
                    );
                }
            }
        }
    )+};
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{:?}` != `{:?}`",
            __l,
            __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l == *__r, $($fmt)+);
    }};
}

#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(*__l != *__r, "assertion failed: `{:?}` == `{:?}`", __l, __r);
    }};
}

#[cfg(test)]
mod shim_tests {
    use crate::prelude::*;
    use crate::test_runner::TestRng;

    #[test]
    fn rng_is_deterministic_per_name() {
        let mut a = TestRng::from_name("x::y");
        let mut b = TestRng::from_name("x::y");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respect_bounds() {
        let mut rng = TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = Strategy::generate(&(3u64..17), &mut rng);
            assert!((3..17).contains(&v));
            let f = Strategy::generate(&(-2.0f64..2.0), &mut rng);
            assert!((-2.0..2.0).contains(&f));
        }
    }

    #[test]
    fn vec_and_select_compose() {
        let mut rng = TestRng::from_name("compose");
        let s = crate::collection::vec(crate::sample::select(vec![1u32, 2, 3]), 1..8);
        for _ in 0..100 {
            let v = Strategy::generate(&s, &mut rng);
            assert!((1..8).contains(&v.len()));
            assert!(v.iter().all(|x| (1..=3).contains(x)));
        }
    }

    proptest! {
        /// The macro itself: args bind, asserts pass, tuples work.
        fn macro_smoke(a in 0u64..100, pair in (0u64..5, 1u64..7)) {
            prop_assert!(a < 100);
            prop_assert!(pair.0 < 5 && pair.1 >= 1);
            prop_assert_eq!(a, a);
        }
    }
}
