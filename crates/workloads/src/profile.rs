//! The offline workload/hardware profile store.
//!
//! §III of the paper: "all terms except y … can be obtained through
//! profiling the workloads over time on the GPU (Solo_M, and FBR_M)".
//! In the real system these come from measurement; here they come from a
//! calibrated analytic table with the same interface.
//!
//! ## The latency model
//!
//! * **GPU:** `solo(bs) = (fixed + per_item · bs) / compute_factor(gpu)`,
//!   where `per_item` is the V100-calibrated per-image (or per-sequence)
//!   milliseconds. Wimpier GPUs stretch both the launch overhead and the
//!   kernel time.
//! * **FBR:** `min(1, bw_demand / gpu_bandwidth)` — one batch's global
//!   memory bandwidth demand as a fraction of the device's. The same model
//!   is heavier on a wimpier GPU, which is why naive MPS consolidation
//!   collapses on the M60 (Fig. 1) while the V100 shrugs it off.
//! * **CPU:** `solo(bs) = cpu_fixed + cpu_per_item · bs / aggregate_factor`,
//!   the framework's batched CPU mode scaling across vCPUs.
//!
//! ## Calibration anchors (from the paper)
//!
//! * Batch latencies land in ~50–200 ms on the hardware schedulers pick (§V).
//! * GoogleNet/DPN-92/VGG-19/DenseNet-121 are the "high-FBR" vision models
//!   (trace peak 225 rps); the rest peak at ~450 rps; language models peak
//!   at 8 rps (§V, "Request Traces").
//! * A c6i.4xlarge sustains ~25 rps for high-FBR workloads (§IV-A).
//! * Language models have much higher execution time, memory footprint and
//!   FBR than vision models (§VI-B), pushing every cost-aware scheme onto
//!   more expensive hardware.

use crate::model::{MlModel, ModelClass};
use paldia_hw::{ComputeKind, GpuModel, InstanceKind};

/// Raw per-model calibration constants.
#[derive(Clone, Copy, Debug)]
struct Raw {
    /// Default (maximum) batch size used for this model (§V).
    batch: u32,
    /// V100 per-item execution time, ms (batch-amortized).
    v100_per_item_ms: f64,
    /// Global memory bandwidth demand of one executing batch, GB/s.
    bw_demand_gbps: f64,
    /// Per-item execution time on one Ice Lake core, ms.
    cpu_per_item_ms: f64,
    /// GPU memory footprint of one resident batch, GiB.
    mem_gib: f64,
}

/// Fixed per-batch launch/staging overhead on the V100, ms.
const GPU_FIXED_MS: f64 = 4.0;
/// Fixed per-batch overhead of the CPU batched mode, ms.
const CPU_FIXED_MS: f64 = 10.0;

fn raw(model: MlModel) -> Raw {
    use MlModel::*;
    match model {
        // ---- Vision: (batch, v100 ms/item, GB/s, cpu ms/item, GiB) ----
        ResNet50 => Raw {
            batch: 64,
            v100_per_item_ms: 0.80,
            bw_demand_gbps: 75.0,
            cpu_per_item_ms: 300.0,
            mem_gib: 0.30,
        },
        GoogleNet => Raw {
            batch: 64,
            v100_per_item_ms: 1.00,
            bw_demand_gbps: 100.0,
            cpu_per_item_ms: 260.0,
            mem_gib: 0.25,
        },
        DenseNet121 => Raw {
            batch: 64,
            v100_per_item_ms: 1.05,
            bw_demand_gbps: 95.0,
            cpu_per_item_ms: 350.0,
            mem_gib: 0.30,
        },
        Dpn92 => Raw {
            batch: 32,
            v100_per_item_ms: 1.40,
            bw_demand_gbps: 120.0,
            cpu_per_item_ms: 420.0,
            mem_gib: 0.45,
        },
        Vgg19 => Raw {
            batch: 32,
            v100_per_item_ms: 1.50,
            bw_demand_gbps: 110.0,
            cpu_per_item_ms: 450.0,
            mem_gib: 0.55,
        },
        ResNet18 => Raw {
            batch: 128,
            v100_per_item_ms: 0.50,
            bw_demand_gbps: 55.0,
            cpu_per_item_ms: 150.0,
            mem_gib: 0.20,
        },
        MobileNet => Raw {
            batch: 128,
            v100_per_item_ms: 0.40,
            bw_demand_gbps: 45.0,
            cpu_per_item_ms: 80.0,
            mem_gib: 0.15,
        },
        MobileNetV2 => Raw {
            batch: 128,
            v100_per_item_ms: 0.44,
            bw_demand_gbps: 48.0,
            cpu_per_item_ms: 95.0,
            mem_gib: 0.15,
        },
        SeNet18 => Raw {
            batch: 128,
            v100_per_item_ms: 0.30,
            bw_demand_gbps: 70.0,
            cpu_per_item_ms: 170.0,
            mem_gib: 0.20,
        },
        ShuffleNetV2 => Raw {
            batch: 128,
            v100_per_item_ms: 0.38,
            bw_demand_gbps: 40.0,
            cpu_per_item_ms: 85.0,
            mem_gib: 0.15,
        },
        EfficientNetB0 => Raw {
            batch: 128,
            v100_per_item_ms: 0.45,
            bw_demand_gbps: 42.0,
            cpu_per_item_ms: 180.0,
            mem_gib: 0.20,
        },
        SimplifiedDla => Raw {
            batch: 128,
            v100_per_item_ms: 0.48,
            bw_demand_gbps: 65.0,
            cpu_per_item_ms: 240.0,
            mem_gib: 0.25,
        },
        // ---- Language: far heavier in every dimension (§VI-B) ----
        Albert => Raw {
            batch: 8,
            v100_per_item_ms: 7.0,
            bw_demand_gbps: 350.0,
            cpu_per_item_ms: 2500.0,
            mem_gib: 2.5,
        },
        Bert => Raw {
            batch: 8,
            v100_per_item_ms: 8.4,
            bw_demand_gbps: 400.0,
            cpu_per_item_ms: 3000.0,
            mem_gib: 3.5,
        },
        DistilBert => Raw {
            batch: 8,
            v100_per_item_ms: 5.0,
            bw_demand_gbps: 300.0,
            cpu_per_item_ms: 1500.0,
            mem_gib: 2.0,
        },
        FunnelTransformer => Raw {
            batch: 8,
            v100_per_item_ms: 8.4,
            bw_demand_gbps: 450.0,
            cpu_per_item_ms: 3500.0,
            mem_gib: 4.0,
        },
    }
}

/// The profile store — static methods answering the questions Algorithm 1
/// and the Job Distributor ask.
///
/// ```
/// use paldia_workloads::{MlModel, Profile};
/// use paldia_hw::InstanceKind;
///
/// let m = MlModel::GoogleNet;
/// let bs = Profile::default_batch(m);
/// // Solo batch latency orders by GPU generation…
/// let v100 = Profile::solo_ms(m, InstanceKind::P3_2xlarge, bs);
/// let m60 = Profile::solo_ms(m, InstanceKind::G3s_xlarge, bs);
/// assert!(v100 < m60);
/// // …and the same batch is a much heavier co-tenant on the wimpier GPU.
/// assert!(Profile::effective_share(m, InstanceKind::G3s_xlarge)
///     > Profile::effective_share(m, InstanceKind::P3_2xlarge));
/// ```
#[derive(Clone, Copy, Debug, Default)]
pub struct Profile;

impl Profile {
    /// The model's default (maximum) batch size, as configured in §V:
    /// max 128 for vision, 8 for language, scaled down for heavy models so
    /// batch latency stays in the 50–200 ms band.
    pub fn default_batch(model: MlModel) -> u32 {
        raw(model).batch
    }

    /// Isolated ("solo") execution latency of a batch of `batch` requests on
    /// the given instance kind, in milliseconds. This is `Solo_M` of Eq. (1)
    /// when `batch` is the model's batch size.
    pub fn solo_ms(model: MlModel, kind: InstanceKind, batch: u32) -> f64 {
        let r = raw(model);
        let b = batch.max(1) as f64;
        match kind.spec().compute {
            ComputeKind::Gpu(gpu) => (GPU_FIXED_MS + r.v100_per_item_ms * b) / gpu.compute_factor(),
            ComputeKind::Cpu(cpu) => CPU_FIXED_MS + r.cpu_per_item_ms * b / cpu.aggregate_factor(),
        }
    }

    /// The Fractional Bandwidth Requirement of one executing batch of this
    /// model on the given GPU — `FBR_M` of Eq. (1). Clamped to 1.0: a batch
    /// cannot demand more than the device delivers (its solo time already
    /// reflects the stretch).
    pub fn fbr(model: MlModel, gpu: GpuModel) -> f64 {
        (raw(model).bw_demand_gbps / gpu.mem_bandwidth_gbps()).min(1.0)
    }

    /// FBR on an instance kind; zero for CPU nodes (no GPU to contend on).
    pub fn fbr_on(model: MlModel, kind: InstanceKind) -> f64 {
        kind.gpu().map_or(0.0, |g| Self::fbr(model, g))
    }

    /// FBR of a batch of `batch` requests (instead of the full default
    /// batch). Bandwidth demand tracks the *item throughput* of the batch:
    /// a partial batch streams fewer activations per second (the fixed
    /// launch overhead dilutes it), so its bandwidth share shrinks
    /// accordingly. Equal to [`Self::fbr_on`] at the default batch size.
    pub fn fbr_for_batch(model: MlModel, kind: InstanceKind, batch: u32) -> f64 {
        Self::batch_scale(model, kind, batch) * Self::fbr_on(model, kind)
    }

    /// SM (compute) occupancy of one executing batch: the fraction of the
    /// device's compute throughput the batch's kernels keep busy. Small on
    /// the V100 (80 SMs — concurrency is nearly free, which is why the (P)
    /// schemes shrug off consolidation) and large on the wimpier
    /// generations (the same kernels occupy most of an M60). Co-located
    /// batches contend on the *maximum* of their bandwidth and compute
    /// shares — the second resource dimension bandwidth-only models miss.
    pub fn occupancy(model: MlModel, gpu: GpuModel) -> f64 {
        let v100_occ = match model.class() {
            ModelClass::Vision => 0.30,
            ModelClass::Language => 0.50,
        };
        (v100_occ / gpu.compute_factor()).min(1.0)
    }

    /// The effective device share of one full batch: the binding resource
    /// (memory bandwidth or SM occupancy). This is what the simulator's
    /// processor-sharing device and Eq. (1) consume as "FBR" — the paper's
    /// profiled FBR plays exactly this binding-resource role.
    pub fn effective_share(model: MlModel, kind: InstanceKind) -> f64 {
        match kind.gpu() {
            None => 0.0,
            Some(g) => Self::fbr(model, g).max(Self::occupancy(model, g)),
        }
    }

    /// Effective share of a partial batch (scaled like [`Self::fbr_for_batch`]).
    pub fn effective_share_for_batch(model: MlModel, kind: InstanceKind, batch: u32) -> f64 {
        Self::batch_scale(model, kind, batch) * Self::effective_share(model, kind)
    }

    /// Item-throughput scaling of a partial batch relative to the full one:
    /// a partial batch streams fewer activations per second (fixed launch
    /// overhead dilutes it), so its resource shares shrink accordingly.
    fn batch_scale(model: MlModel, kind: InstanceKind, batch: u32) -> f64 {
        let bs_full = Self::default_batch(model);
        let b = batch.max(1).min(bs_full);
        if b == bs_full {
            return 1.0;
        }
        let items_per_ms = b as f64 / Self::solo_ms(model, kind, b);
        let items_per_ms_full = bs_full as f64 / Self::solo_ms(model, kind, bs_full);
        (items_per_ms / items_per_ms_full).min(1.0)
    }

    /// GPU memory footprint of one resident batch, GiB. Bounds how many
    /// batches can be spatially co-located on a device.
    pub fn batch_mem_gib(model: MlModel) -> f64 {
        raw(model).mem_gib
    }

    /// Maximum number of batches that fit in the device memory at once.
    pub fn max_resident_batches(model: MlModel, gpu: GpuModel) -> u32 {
        ((gpu.memory_gib() / raw(model).mem_gib).floor() as u32).max(1)
    }

    /// Whether the paper classes this model as "high-FBR" (peak trace rate
    /// 225 rps instead of 450). GoogleNet and DPN-92 are the paper's named
    /// examples; all language models qualify.
    pub fn is_high_fbr(model: MlModel) -> bool {
        matches!(
            model,
            MlModel::GoogleNet | MlModel::DenseNet121 | MlModel::Dpn92 | MlModel::Vgg19
        ) || model.class() == ModelClass::Language
    }

    /// The peak request rate the paper scales this model's trace to (§V).
    pub fn peak_rps(model: MlModel) -> f64 {
        match model.class() {
            ModelClass::Language => 8.0,
            ModelClass::Vision => {
                if Self::is_high_fbr(model) {
                    225.0
                } else {
                    450.0
                }
            }
        }
    }

    /// The per-request service time (ms) the request-level batcher's close
    /// deadline has historically assumed for every admitted request: one
    /// item's share of a full batch on the reference V100. Lifted into the
    /// profile so variable-length (token-count) requests can report how far
    /// they deviate from it (see `paldia_cluster::batcher`).
    pub fn uniform_service_ms(model: MlModel) -> f64 {
        raw(model).v100_per_item_ms
    }

    /// One decode iteration's latency (ms) for a single resident sequence
    /// of `model` on `kind` — the time to produce one token for one
    /// request in iteration-level (continuous-batching) execution.
    ///
    /// Calibrated from the request-level profile: a profiled "item" is a
    /// [`crate::tokens::TOKENS_PER_ITEM`]-token unit of work, so the
    /// per-token step is the per-item time divided by that, stretched by
    /// the device's compute factor exactly like [`Self::solo_ms`]. CPU
    /// nodes pay their batched-mode per-item cost per unit too — which is
    /// what prices them out of LLM serving (their per-token latency, not
    /// memory, is the binding exclusion).
    pub fn token_step_ms(model: MlModel, kind: InstanceKind) -> f64 {
        let r = raw(model);
        let unit = crate::tokens::TOKENS_PER_ITEM as f64;
        match kind.spec().compute {
            ComputeKind::Gpu(gpu) => r.v100_per_item_ms / unit / gpu.compute_factor(),
            ComputeKind::Cpu(cpu) => r.cpu_per_item_ms / unit / cpu.aggregate_factor(),
        }
    }

    /// Time-shared throughput capacity (requests/s) at the given batch size:
    /// the rate above which a FIFO device queue is unstable.
    pub fn ts_capacity_rps(model: MlModel, kind: InstanceKind, batch: u32) -> f64 {
        let solo_s = Self::solo_ms(model, kind, batch) / 1_000.0;
        batch.max(1) as f64 / solo_s
    }

    /// The largest batch size (≤ the model default) whose solo latency on
    /// `kind` stays within `latency_budget_ms`. Returns `None` when even a
    /// single request misses the budget (the node is not capable at all).
    ///
    /// Used for the CPU path, where the framework adapts batch size to the
    /// node, and for capability pruning in `get_HW_pool`.
    pub fn max_batch_within(
        model: MlModel,
        kind: InstanceKind,
        latency_budget_ms: f64,
    ) -> Option<u32> {
        let cap = Self::default_batch(model);
        if Self::solo_ms(model, kind, 1) > latency_budget_ms {
            return None;
        }
        if Self::solo_ms(model, kind, cap) <= latency_budget_ms {
            return Some(cap);
        }
        // Solo latency is monotone in batch size: binary search the edge.
        let (mut lo, mut hi) = (1u32, cap);
        while lo < hi {
            let mid = (lo + hi).div_ceil(2);
            if Self::solo_ms(model, kind, mid) <= latency_budget_ms {
                lo = mid;
            } else {
                hi = mid - 1;
            }
        }
        Some(lo)
    }

    /// Sustainable throughput of `kind` for `model` under a latency budget:
    /// picks the best batch size within the budget and reports the resulting
    /// requests/s. Zero if the node cannot serve a single request in budget.
    pub fn capacity_within(model: MlModel, kind: InstanceKind, latency_budget_ms: f64) -> f64 {
        match Self::max_batch_within(model, kind, latency_budget_ms) {
            None => 0.0,
            Some(bs) => Self::ts_capacity_rps(model, kind, bs),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SLO_MS: f64 = 200.0;

    #[test]
    fn vision_batch_latency_in_band_on_m60() {
        // §V: batch sizes are selected so batch latency is ~50–200 ms on the
        // hardware considered. The M60 is the workhorse cheap GPU.
        for m in MlModel::VISION {
            let bs = Profile::default_batch(m);
            let solo = Profile::solo_ms(m, InstanceKind::G3s_xlarge, bs);
            assert!(
                (50.0..=200.0).contains(&solo),
                "{m}: solo {solo:.1} ms out of band on M60"
            );
        }
    }

    #[test]
    fn vision_faster_on_v100() {
        for m in MlModel::VISION {
            let bs = Profile::default_batch(m);
            let v100 = Profile::solo_ms(m, InstanceKind::P3_2xlarge, bs);
            let m60 = Profile::solo_ms(m, InstanceKind::G3s_xlarge, bs);
            let k80 = Profile::solo_ms(m, InstanceKind::P2_xlarge, bs);
            assert!(v100 < m60 && m60 < k80, "{m}: ordering broken");
        }
    }

    #[test]
    fn high_fbr_set_matches_paper() {
        assert!(Profile::is_high_fbr(MlModel::GoogleNet));
        assert!(Profile::is_high_fbr(MlModel::Dpn92));
        assert!(Profile::is_high_fbr(MlModel::Vgg19));
        assert!(Profile::is_high_fbr(MlModel::DenseNet121));
        assert!(!Profile::is_high_fbr(MlModel::EfficientNetB0));
        assert!(!Profile::is_high_fbr(MlModel::MobileNet));
        for m in MlModel::LANGUAGE {
            assert!(Profile::is_high_fbr(m));
        }
    }

    #[test]
    fn trace_peaks_match_paper() {
        assert_eq!(Profile::peak_rps(MlModel::GoogleNet), 225.0);
        assert_eq!(Profile::peak_rps(MlModel::SeNet18), 450.0);
        assert_eq!(Profile::peak_rps(MlModel::Bert), 8.0);
    }

    #[test]
    fn fbr_higher_on_wimpier_gpus() {
        for m in MlModel::ALL {
            let v100 = Profile::fbr(m, GpuModel::V100);
            let m60 = Profile::fbr(m, GpuModel::M60);
            assert!(m60 >= v100, "{m}: FBR should grow as bandwidth shrinks");
            assert!(v100 > 0.0 && m60 <= 1.0);
        }
    }

    #[test]
    fn fbr_example_magnitude() {
        // The paper's running example: "an FBR of 0.2 indicates the job
        // requires 20% of the global memory bandwidth" — vision models on
        // the V100 sit in the ~0.05–0.15 range, on the M60 ~0.25–0.75.
        let f = Profile::fbr(MlModel::GoogleNet, GpuModel::M60);
        assert!((0.5..0.8).contains(&f), "GoogleNet M60 FBR {f}");
        let f = Profile::fbr(MlModel::GoogleNet, GpuModel::V100);
        assert!((0.05..0.2).contains(&f), "GoogleNet V100 FBR {f}");
    }

    #[test]
    fn language_models_saturate_cheap_gpus() {
        for m in MlModel::LANGUAGE {
            assert_eq!(Profile::fbr(m, GpuModel::M60), 1.0, "{m}");
        }
    }

    #[test]
    fn language_heavier_than_vision() {
        // §VI-B: "significantly higher execution times, memory footprints,
        // and FBRs than those of the vision models".
        let worst_vision_mem = MlModel::VISION
            .iter()
            .map(|&m| Profile::batch_mem_gib(m))
            .fold(0.0, f64::max);
        for m in MlModel::LANGUAGE {
            assert!(Profile::batch_mem_gib(m) >= worst_vision_mem);
            let per_item_v100 = Profile::solo_ms(m, InstanceKind::P3_2xlarge, 8) / 8.0;
            assert!(per_item_v100 > 2.0, "{m}: per-item {per_item_v100}");
        }
    }

    #[test]
    fn cpu_node_sustains_about_25_rps_for_high_fbr() {
        // §IV-A: "we use CPU nodes to handle lower request rates (up to
        // ~25 rps for workloads with high FBRs)".
        let cap = Profile::capacity_within(MlModel::Dpn92, InstanceKind::C6i_4xlarge, SLO_MS);
        assert!((15.0..40.0).contains(&cap), "DPN-92 c6i.4xlarge cap {cap}");
        let cap = Profile::capacity_within(MlModel::GoogleNet, InstanceKind::C6i_4xlarge, SLO_MS);
        assert!(
            (20.0..60.0).contains(&cap),
            "GoogleNet c6i.4xlarge cap {cap}"
        );
    }

    #[test]
    fn light_models_do_better_on_cpu() {
        let mobile =
            Profile::capacity_within(MlModel::MobileNet, InstanceKind::C6i_4xlarge, SLO_MS);
        let dpn = Profile::capacity_within(MlModel::Dpn92, InstanceKind::C6i_4xlarge, SLO_MS);
        assert!(mobile > 3.0 * dpn, "MobileNet {mobile} vs DPN-92 {dpn}");
    }

    #[test]
    fn max_batch_within_monotone_and_correct() {
        let m = MlModel::ResNet50;
        let k = InstanceKind::C6i_2xlarge;
        let bs = Profile::max_batch_within(m, k, SLO_MS).unwrap();
        assert!(Profile::solo_ms(m, k, bs) <= SLO_MS);
        if bs < Profile::default_batch(m) {
            assert!(Profile::solo_ms(m, k, bs + 1) > SLO_MS);
        }
    }

    #[test]
    fn incapable_node_returns_none() {
        // A 2-vCPU Broadwell box cannot run one BERT sequence in 200 ms.
        assert_eq!(
            Profile::max_batch_within(MlModel::Bert, InstanceKind::M4_xlarge, SLO_MS),
            None
        );
        assert_eq!(
            Profile::capacity_within(MlModel::Bert, InstanceKind::M4_xlarge, SLO_MS),
            0.0
        );
    }

    #[test]
    fn m60_capacity_brackets_vision_peaks() {
        // Calibration anchor: the cheap M60 node's time-shared capacity sits
        // above each model's peak (it is "capable") but within ~2.5× of it,
        // so surges genuinely stress it — the regime where the paper's
        // scheduling differences appear.
        for m in MlModel::VISION {
            let bs = Profile::default_batch(m);
            let cap = Profile::ts_capacity_rps(m, InstanceKind::G3s_xlarge, bs);
            let peak = Profile::peak_rps(m);
            assert!(
                cap > 0.7 * peak && cap < 4.0 * peak,
                "{m}: M60 capacity {cap:.0} rps vs peak {peak}"
            );
        }
    }

    #[test]
    fn v100_fbr_headroom_supports_p_schemes() {
        // The (P) schemes consolidate everything on the V100 with MPS and
        // still meet SLOs: a surge's worth of concurrent vision batches must
        // not saturate its bandwidth badly.
        for m in MlModel::VISION {
            assert!(Profile::fbr(m, GpuModel::V100) < 0.15, "{m}");
        }
    }

    #[test]
    fn resident_batch_limits() {
        assert!(Profile::max_resident_batches(MlModel::FunnelTransformer, GpuModel::M60) <= 2);
        assert!(Profile::max_resident_batches(MlModel::MobileNet, GpuModel::V100) >= 16);
    }

    #[test]
    fn solo_monotone_in_batch() {
        for m in [MlModel::ResNet50, MlModel::Bert] {
            for k in [InstanceKind::P3_2xlarge, InstanceKind::C6i_4xlarge] {
                let mut prev = 0.0;
                for bs in [1, 2, 4, 8] {
                    let s = Profile::solo_ms(m, k, bs);
                    assert!(s > prev);
                    prev = s;
                }
            }
        }
    }

    #[test]
    fn fbr_scales_with_batch_size() {
        let m = MlModel::GoogleNet;
        let k = InstanceKind::G3s_xlarge;
        let full = Profile::fbr_for_batch(m, k, Profile::default_batch(m));
        assert!((full - Profile::fbr_on(m, k)).abs() < 1e-12);
        let small = Profile::fbr_for_batch(m, k, 8);
        assert!(small < full, "partial batches demand less bandwidth");
        assert!(small > 0.0);
        // Monotone in batch size.
        let mut prev = 0.0;
        for bs in [1, 4, 16, 64] {
            let f = Profile::fbr_for_batch(m, k, bs);
            assert!(f >= prev);
            prev = f;
        }
        // CPU nodes contend on nothing.
        assert_eq!(Profile::fbr_for_batch(m, InstanceKind::C6i_4xlarge, 8), 0.0);
    }

    #[test]
    fn zero_batch_clamps_to_one() {
        assert_eq!(
            Profile::solo_ms(MlModel::ResNet50, InstanceKind::P3_2xlarge, 0),
            Profile::solo_ms(MlModel::ResNet50, InstanceKind::P3_2xlarge, 1)
        );
    }
}
