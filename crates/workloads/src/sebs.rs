//! The "regular" CPU-bound serverless workloads from the SeBS benchmark
//! suite, used in the mixed-workload study (Table III).
//!
//! The paper co-locates file compression, dynamic HTML generation and image
//! thumbnailing with the inference workloads and observes up to ~10% SLO
//! degradation for the cost-effective schemes, felt most strongly when
//! inference runs on CPU-only nodes (direct contention for host cores).
//!
//! We model each workload by its host-CPU demand; the cluster layer converts
//! the co-located mix into (a) a host-contention factor for GPU nodes
//! (staging/batching slow down) and (b) a direct core-stealing factor for
//! CPU nodes.

use std::fmt;

/// A SeBS CPU-bound serverless workload.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum SebsWorkload {
    /// `compression`: zip a file tree.
    FileCompression,
    /// `dynamic-html`: render a templated page.
    DynamicHtml,
    /// `thumbnailer`: resize an image.
    ImageThumbnail,
}

impl SebsWorkload {
    /// The three workloads used in Table III.
    pub const ALL: [SebsWorkload; 3] = [
        SebsWorkload::FileCompression,
        SebsWorkload::DynamicHtml,
        SebsWorkload::ImageThumbnail,
    ];

    /// Mean execution time of one invocation on one Ice Lake core, ms.
    pub fn mean_exec_ms(self) -> f64 {
        match self {
            SebsWorkload::FileCompression => 250.0,
            SebsWorkload::DynamicHtml => 15.0,
            SebsWorkload::ImageThumbnail => 60.0,
        }
    }

    /// Average number of host cores the workload keeps busy while running
    /// (compression is the only multi-threaded one).
    pub fn cores_used(self) -> f64 {
        match self {
            SebsWorkload::FileCompression => 2.0,
            SebsWorkload::DynamicHtml => 1.0,
            SebsWorkload::ImageThumbnail => 1.0,
        }
    }

    /// Workload name as in the SeBS suite.
    pub fn name(self) -> &'static str {
        match self {
            SebsWorkload::FileCompression => "compression",
            SebsWorkload::DynamicHtml => "dynamic-html",
            SebsWorkload::ImageThumbnail => "thumbnailer",
        }
    }
}

impl fmt::Display for SebsWorkload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A co-located background mix: each SeBS workload invoked at a fixed rate.
#[derive(Clone, Debug, Default)]
pub struct SebsMix {
    /// (workload, invocations per second) pairs.
    pub rates: Vec<(SebsWorkload, f64)>,
}

impl SebsMix {
    /// No background load.
    pub fn none() -> Self {
        SebsMix { rates: Vec::new() }
    }

    /// The Table III mix: all three workloads at a moderate rate.
    pub fn table_iii() -> Self {
        SebsMix {
            rates: vec![
                (SebsWorkload::FileCompression, 2.0),
                (SebsWorkload::DynamicHtml, 20.0),
                (SebsWorkload::ImageThumbnail, 6.0),
            ],
        }
    }

    /// Average host cores consumed by the mix (Little's law: rate × holding
    /// time × cores).
    pub fn mean_cores_busy(&self) -> f64 {
        self.rates
            .iter()
            .map(|&(w, r)| r * w.mean_exec_ms() / 1_000.0 * w.cores_used())
            .sum()
    }

    /// Host-contention factor for a node with `host_vcpus` cores: the
    /// fraction of host capacity stolen by the background mix, clamped to
    /// [0, 0.9] (the host never fully starves the foreground).
    pub fn contention_factor(&self, host_vcpus: u32) -> f64 {
        if host_vcpus == 0 {
            return 0.0;
        }
        (self.mean_cores_busy() / host_vcpus as f64).clamp(0.0, 0.9)
    }

    /// True if no background workloads run.
    pub fn is_empty(&self) -> bool {
        self.rates.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_cores_busy_little_law() {
        let mix = SebsMix {
            rates: vec![(SebsWorkload::FileCompression, 2.0)],
        };
        // 2/s × 0.25 s × 2 cores = 1 core busy on average.
        assert!((mix.mean_cores_busy() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_iii_mix_is_substantial() {
        let mix = SebsMix::table_iii();
        let busy = mix.mean_cores_busy();
        assert!(busy > 1.0 && busy < 4.0, "busy {busy}");
    }

    #[test]
    fn contention_stronger_on_smaller_hosts() {
        let mix = SebsMix::table_iii();
        // Direct contention on a 2-vCPU m4.xlarge is far worse than on a
        // 16-vCPU c6i.4xlarge — the Table III effect.
        assert!(mix.contention_factor(2) > 3.0 * mix.contention_factor(16));
        assert!(mix.contention_factor(2) <= 0.9);
    }

    #[test]
    fn empty_mix_no_contention() {
        assert_eq!(SebsMix::none().contention_factor(8), 0.0);
        assert!(SebsMix::none().is_empty());
    }

    #[test]
    fn zero_cores_no_panic() {
        assert_eq!(SebsMix::table_iii().contention_factor(0), 0.0);
    }
}
