//! Model cards: descriptive metadata for the 16 workloads, for docs,
//! reports and sanity checks against public numbers.
//!
//! These are informational (parameter counts and publication years from the
//! models' papers); scheduling uses only [`crate::profile::Profile`].

use crate::model::{MlModel, ModelClass};

/// Descriptive metadata for one model.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelCard {
    /// The model.
    pub model: MlModel,
    /// Approximate parameter count, millions.
    pub params_m: f64,
    /// Publication year of the architecture.
    pub year: u16,
    /// ImageNet-1k for vision, Large Movie Review Dataset for language (§V).
    pub dataset: &'static str,
    /// One-line description.
    pub blurb: &'static str,
}

/// The card for a model.
pub fn card(model: MlModel) -> ModelCard {
    use MlModel::*;
    let (params_m, year, blurb) = match model {
        ResNet50 => (25.6, 2015, "residual CNN, the classic serving benchmark"),
        GoogleNet => (6.6, 2014, "Inception-v1, multi-branch convolutions"),
        DenseNet121 => (8.0, 2016, "densely connected CNN, memory-access heavy"),
        Dpn92 => (37.7, 2017, "dual-path network, ResNet+DenseNet hybrid"),
        Vgg19 => (143.7, 2014, "deep plain CNN, largest weights of the set"),
        ResNet18 => (11.7, 2015, "shallow residual CNN"),
        MobileNet => (4.2, 2017, "depthwise-separable CNN for mobile"),
        MobileNetV2 => (3.5, 2018, "inverted residuals + linear bottlenecks"),
        SeNet18 => (11.8, 2017, "squeeze-and-excitation channel attention"),
        ShuffleNetV2 => (2.3, 2018, "channel-shuffle efficiency CNN"),
        EfficientNetB0 => (5.3, 2019, "compound-scaled baseline CNN"),
        SimplifiedDla => (15.0, 2017, "deep layer aggregation (simplified)"),
        Albert => (12.0, 2019, "parameter-shared BERT variant"),
        Bert => (110.0, 2018, "bidirectional transformer encoder (base)"),
        DistilBert => (66.0, 2019, "distilled BERT, 40% smaller"),
        FunnelTransformer => (130.0, 2020, "sequence-compressing transformer"),
    };
    ModelCard {
        model,
        params_m,
        year,
        dataset: match model.class() {
            ModelClass::Vision => "ImageNet-1k",
            ModelClass::Language => "Large Movie Review Dataset",
        },
        blurb,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_model_has_a_card() {
        for m in MlModel::ALL {
            let c = card(m);
            assert_eq!(c.model, m);
            assert!(c.params_m > 0.0);
            assert!((2014..=2020).contains(&c.year));
            assert!(!c.blurb.is_empty());
        }
    }

    #[test]
    fn datasets_match_paper() {
        assert_eq!(card(MlModel::ResNet50).dataset, "ImageNet-1k");
        assert_eq!(card(MlModel::Bert).dataset, "Large Movie Review Dataset");
    }

    #[test]
    fn vgg_is_the_heavyweight_vision_model() {
        let vgg = card(MlModel::Vgg19).params_m;
        for m in MlModel::VISION {
            assert!(card(m).params_m <= vgg);
        }
    }
}
