//! The 16 ML inference models of the evaluation (§V, "Workloads").

use std::fmt;

/// Workload domain.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ModelClass {
    /// Image classification on ImageNet-1k (max batch 128).
    Vision,
    /// Sequence classification on the Large Movie Review Dataset (max batch 8).
    Language,
}

/// One of the paper's 16 inference models.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum MlModel {
    // ---- Vision (12) ----
    /// ResNet-50 \[55\]
    ResNet50,
    /// GoogleNet \[81\]
    GoogleNet,
    /// DenseNet-121 \[58\]
    DenseNet121,
    /// DPN-92 \[39\]
    Dpn92,
    /// VGG-19 \[79\]
    Vgg19,
    /// ResNet-18 \[55\]
    ResNet18,
    /// MobileNet \[56\]
    MobileNet,
    /// MobileNet V2 \[71\]
    MobileNetV2,
    /// SENet-18 \[57\]
    SeNet18,
    /// ShuffleNet V2 \[63\]
    ShuffleNetV2,
    /// EfficientNet-B0 \[82\]
    EfficientNetB0,
    /// Simplified DLA \[87\]
    SimplifiedDla,
    // ---- Language (4) ----
    /// ALBERT \[62\]
    Albert,
    /// BERT \[46\]
    Bert,
    /// DistilBERT \[72\]
    DistilBert,
    /// Funnel-Transformer \[43\]
    FunnelTransformer,
}

impl MlModel {
    /// All sixteen models, vision first.
    pub const ALL: [MlModel; 16] = [
        MlModel::ResNet50,
        MlModel::GoogleNet,
        MlModel::DenseNet121,
        MlModel::Dpn92,
        MlModel::Vgg19,
        MlModel::ResNet18,
        MlModel::MobileNet,
        MlModel::MobileNetV2,
        MlModel::SeNet18,
        MlModel::ShuffleNetV2,
        MlModel::EfficientNetB0,
        MlModel::SimplifiedDla,
        MlModel::Albert,
        MlModel::Bert,
        MlModel::DistilBert,
        MlModel::FunnelTransformer,
    ];

    /// The twelve vision models used in the primary experiments.
    pub const VISION: [MlModel; 12] = [
        MlModel::ResNet50,
        MlModel::GoogleNet,
        MlModel::DenseNet121,
        MlModel::Dpn92,
        MlModel::Vgg19,
        MlModel::ResNet18,
        MlModel::MobileNet,
        MlModel::MobileNetV2,
        MlModel::SeNet18,
        MlModel::ShuffleNetV2,
        MlModel::EfficientNetB0,
        MlModel::SimplifiedDla,
    ];

    /// The four large language models of the sensitivity study.
    pub const LANGUAGE: [MlModel; 4] = [
        MlModel::Albert,
        MlModel::Bert,
        MlModel::DistilBert,
        MlModel::FunnelTransformer,
    ];

    /// Domain of this model.
    pub fn class(self) -> ModelClass {
        if (self as usize) < 12 {
            ModelClass::Vision
        } else {
            ModelClass::Language
        }
    }

    /// Human-readable name matching the paper's figures.
    pub fn name(self) -> &'static str {
        match self {
            MlModel::ResNet50 => "ResNet 50",
            MlModel::GoogleNet => "GoogleNet",
            MlModel::DenseNet121 => "DenseNet 121",
            MlModel::Dpn92 => "DPN 92",
            MlModel::Vgg19 => "VGG 19",
            MlModel::ResNet18 => "ResNet 18",
            MlModel::MobileNet => "MobileNet",
            MlModel::MobileNetV2 => "MobileNet V2",
            MlModel::SeNet18 => "SENet 18",
            MlModel::ShuffleNetV2 => "ShuffleNet V2",
            MlModel::EfficientNetB0 => "EfficientNet-B0",
            MlModel::SimplifiedDla => "Simplified DLA",
            MlModel::Albert => "AlBERT",
            MlModel::Bert => "BERT",
            MlModel::DistilBert => "DistilBERT",
            MlModel::FunnelTransformer => "Funnel-Transformer",
        }
    }

    /// Stable small index (0..16) for tables and per-model RNG forks.
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for MlModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_models_split_12_4() {
        assert_eq!(MlModel::ALL.len(), 16);
        assert_eq!(MlModel::VISION.len(), 12);
        assert_eq!(MlModel::LANGUAGE.len(), 4);
        assert!(MlModel::VISION
            .iter()
            .all(|m| m.class() == ModelClass::Vision));
        assert!(MlModel::LANGUAGE
            .iter()
            .all(|m| m.class() == ModelClass::Language));
    }

    #[test]
    fn indices_are_unique_and_dense() {
        let mut seen = [false; 16];
        for m in MlModel::ALL {
            assert!(!seen[m.index()]);
            seen[m.index()] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn names_match_paper_figures() {
        assert_eq!(MlModel::SeNet18.name(), "SENet 18");
        assert_eq!(MlModel::Dpn92.name(), "DPN 92");
        assert_eq!(MlModel::EfficientNetB0.name(), "EfficientNet-B0");
        assert_eq!(MlModel::FunnelTransformer.name(), "Funnel-Transformer");
    }
}
