//! Token-length-distribution workload cards for iteration-level
//! (continuous-batching) LLM execution.
//!
//! The request-level profile treats one request as one opaque "item"; an
//! LLM request is a *sequence*: a prompt of `prefill` tokens consumed in
//! chunked prefill iterations, then `decode` tokens produced one per
//! iteration. A [`TokenCard`] is the per-model distribution those lengths
//! are drawn from, and a [`TokenLens`] is one request's concrete draw.
//!
//! Sampling is a pure hash of `(seed, request id)` — no RNG stream — so
//! any layer (the batcher computing service hints, the device engine
//! sizing KV reservations, an experiment recomputing per-token latency
//! from a completed-request record) derives the *same* lengths for a request
//! without threading state or caring about draw order. That is what keeps
//! the iteration-level mode bit-identical across shard counts: lengths are
//! a function of identity, not of sampling history.
//!
//! KV-cache accounting is conservative (vLLM's reserve-on-admit policy):
//! a sequence reserves `prefill + decode` tokens of KV for its whole
//! residency, so `Σ kv ≤ capacity` can never be violated mid-flight by
//! decode growth.

use crate::model::MlModel;
use crate::profile::Profile;
use paldia_hw::InstanceKind;

/// Tokens of work in one profiled request-level "item": the unit that maps
/// the per-item latency table onto per-token iteration steps
/// ([`Profile::token_step_ms`]).
pub const TOKENS_PER_ITEM: u32 = 8;

/// Prompt tokens consumed per chunked-prefill iteration. A joining
/// sequence occupies `ceil(prefill / 32)` iterations before its first
/// decode step.
pub const PREFILL_TOKENS_PER_ITER: u32 = 32;

/// Per-additional-resident stretch of an iteration (batched attention and
/// KV traffic are not free): iteration time scales by
/// `1 + 0.02 · (residents − 1)`.
pub const ITER_RESIDENT_PENALTY: f64 = 0.02;

/// A token-length distribution: which (prefill, decode) lengths a model's
/// requests draw.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TokenCard {
    /// Short conversational turns: prompts 16–64 tokens, replies 8–32.
    ShortChat,
    /// Long-document workloads: prompts 128–256 tokens, outputs 48–96.
    LongDoc,
    /// 80% short exchanges (16–32 in, 4–8 out), 20% long tails
    /// (192–256 in, 64–128 out) — the bimodal shape that breaks any
    /// uniform-service-time assumption.
    Bimodal,
}

impl TokenCard {
    /// The card each language model serves under in the LLM experiments.
    /// Vision models have no token structure and also map to
    /// [`TokenCard::ShortChat`] should a caller ask.
    pub fn for_model(model: MlModel) -> TokenCard {
        match model {
            MlModel::Bert => TokenCard::LongDoc,
            MlModel::FunnelTransformer => TokenCard::Bimodal,
            _ => TokenCard::ShortChat,
        }
    }

    /// Draw the token lengths of request `req_id` under `seed`. Pure in
    /// both arguments: the same (card, seed, id) always yields the same
    /// lengths, on any shard, in any order.
    pub fn sample(self, seed: u64, req_id: u64) -> TokenLens {
        match self {
            TokenCard::ShortChat => TokenLens {
                prefill: draw(seed, req_id, 0, 16, 64),
                decode: draw(seed, req_id, 1, 8, 32),
            },
            TokenCard::LongDoc => TokenLens {
                prefill: draw(seed, req_id, 0, 128, 256),
                decode: draw(seed, req_id, 1, 48, 96),
            },
            TokenCard::Bimodal => {
                if mix(seed, req_id.wrapping_mul(4).wrapping_add(2)) % 10 < 8 {
                    TokenLens {
                        prefill: draw(seed, req_id, 0, 16, 32),
                        decode: draw(seed, req_id, 1, 4, 8),
                    }
                } else {
                    TokenLens {
                        prefill: draw(seed, req_id, 0, 192, 256),
                        decode: draw(seed, req_id, 1, 64, 128),
                    }
                }
            }
        }
    }

    /// Expected KV-token footprint of one request (mean prefill + decode),
    /// used by the scheduler to turn an observed request rate into KV
    /// demand.
    pub fn mean_kv_tokens(self) -> f64 {
        match self {
            TokenCard::ShortChat => (16.0 + 64.0) / 2.0 + (8.0 + 32.0) / 2.0,
            TokenCard::LongDoc => (128.0 + 256.0) / 2.0 + (48.0 + 96.0) / 2.0,
            TokenCard::Bimodal => {
                0.8 * ((16.0 + 32.0) / 2.0 + (4.0 + 8.0) / 2.0)
                    + 0.2 * ((192.0 + 256.0) / 2.0 + (64.0 + 128.0) / 2.0)
            }
        }
    }
}

/// One request's concrete token lengths.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TokenLens {
    /// Prompt tokens, consumed [`PREFILL_TOKENS_PER_ITER`] per iteration.
    pub prefill: u32,
    /// Output tokens, produced one per iteration.
    pub decode: u32,
}

impl TokenLens {
    /// Iterations the prompt occupies before the first decode step.
    pub fn prefill_iters(&self) -> u32 {
        self.prefill.div_ceil(PREFILL_TOKENS_PER_ITER).max(1)
    }

    /// Total iterations the sequence is resident: chunked prefill plus one
    /// per decode token.
    pub fn total_iters(&self) -> u32 {
        self.prefill_iters() + self.decode
    }

    /// KV-cache tokens reserved for the sequence's whole residency
    /// (conservative full reservation; see module docs).
    pub fn kv_tokens(&self) -> u64 {
        self.prefill as u64 + self.decode as u64
    }

    /// Per-request service-time hint (ms) on the reference V100 — what the
    /// batcher compares against [`Profile::uniform_service_ms`] when
    /// tightening close deadlines for longer-than-assumed requests.
    pub fn service_hint_ms(&self, model: MlModel) -> f64 {
        self.total_iters() as f64 * Profile::token_step_ms(model, InstanceKind::P3_2xlarge)
    }
}

/// Latency (ms) of one iteration on `kind` with `residents` sequences in
/// the running batch: the slowest per-sequence token step stretched by the
/// resident-count penalty.
pub fn iteration_ms(model: MlModel, kind: InstanceKind, residents: u32) -> f64 {
    let stretch = 1.0 + ITER_RESIDENT_PENALTY * residents.saturating_sub(1) as f64;
    Profile::token_step_ms(model, kind) * stretch
}

/// splitmix64-style avalanche of `(seed, lane)` — the pure source every
/// draw goes through.
fn mix(seed: u64, lane: u64) -> u64 {
    let mut z = seed
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(lane)
        .wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Uniform draw in `[lo, hi]` from the hash lane `(req_id, slot)`.
fn draw(seed: u64, req_id: u64, slot: u64, lo: u32, hi: u32) -> u32 {
    let h = mix(seed, req_id.wrapping_mul(4).wrapping_add(slot));
    lo + (h % (hi - lo + 1) as u64) as u32
}

#[cfg(test)]
mod tests {
    use super::*;
    use paldia_hw::GpuModel;

    #[test]
    fn sampling_is_pure_and_in_range() {
        for card in [TokenCard::ShortChat, TokenCard::LongDoc, TokenCard::Bimodal] {
            for id in 0..500u64 {
                let a = card.sample(42, id);
                let b = card.sample(42, id);
                assert_eq!(a, b, "{card:?}/{id}: sampling must be pure");
                assert!(a.prefill >= 16 && a.prefill <= 256, "{card:?}: {a:?}");
                assert!(a.decode >= 4 && a.decode <= 128, "{card:?}: {a:?}");
            }
        }
    }

    #[test]
    fn seeds_and_ids_change_draws() {
        let base = TokenCard::LongDoc.sample(1, 10);
        assert_ne!(base, TokenCard::LongDoc.sample(2, 10));
        assert_ne!(base, TokenCard::LongDoc.sample(1, 11));
    }

    #[test]
    fn bimodal_is_actually_bimodal() {
        let mut short = 0usize;
        let mut long = 0usize;
        for id in 0..1_000u64 {
            let l = TokenCard::Bimodal.sample(7, id);
            if l.prefill <= 32 {
                short += 1;
            } else {
                assert!(l.prefill >= 192);
                long += 1;
            }
        }
        assert!(short > 700 && short < 900, "short fraction {short}/1000");
        assert!(long > 100, "long tail {long}/1000");
    }

    #[test]
    fn token_conservation_identity() {
        let l = TokenLens {
            prefill: 65,
            decode: 10,
        };
        assert_eq!(l.prefill_iters(), 3); // ceil(65/32)
        assert_eq!(l.total_iters(), 13);
        assert_eq!(l.kv_tokens(), 75);
    }

    #[test]
    fn kv_binds_for_longdoc_fbr_for_shortchat_on_v100() {
        // Calibration: the two capacity dimensions bind on different
        // cards. LongDoc (BERT) exhausts V100 KV before its FBR slices;
        // ShortChat (ALBERT) exhausts FBR slices first.
        let kv_cap = GpuModel::V100.kv_capacity_tokens() as f64;
        let per_seq_share = |m: MlModel| {
            Profile::effective_share(m, InstanceKind::P3_2xlarge) / Profile::default_batch(m) as f64
        };
        let by_kv = |c: TokenCard| kv_cap / c.mean_kv_tokens();
        let by_share = |m: MlModel| 1.0 / per_seq_share(m);
        assert!(
            by_kv(TokenCard::LongDoc) < by_share(MlModel::Bert),
            "LongDoc: kv {} vs share {}",
            by_kv(TokenCard::LongDoc),
            by_share(MlModel::Bert)
        );
        assert!(
            by_kv(TokenCard::ShortChat) > by_share(MlModel::Albert),
            "ShortChat: kv {} vs share {}",
            by_kv(TokenCard::ShortChat),
            by_share(MlModel::Albert)
        );
    }

    #[test]
    fn iteration_time_orders_by_hardware_and_residents() {
        let v100 = iteration_ms(MlModel::Bert, InstanceKind::P3_2xlarge, 1);
        let m60 = iteration_ms(MlModel::Bert, InstanceKind::G3s_xlarge, 1);
        let cpu = iteration_ms(MlModel::Bert, InstanceKind::C6i_4xlarge, 1);
        assert!(v100 < m60 && m60 < cpu, "{v100} {m60} {cpu}");
        assert!(
            iteration_ms(MlModel::Bert, InstanceKind::P3_2xlarge, 8) > v100,
            "more residents stretch the iteration"
        );
        // A V100 serves a LongDoc sequence's full residency well inside
        // the 200 ms SLO even in a loaded batch…
        let loaded = iteration_ms(MlModel::Bert, InstanceKind::P3_2xlarge, 12);
        let mean_iters = TokenCard::LongDoc.sample(1, 1).total_iters() as f64;
        assert!(loaded * mean_iters < 200.0, "{}", loaded * mean_iters);
        // …while a CPU node cannot even finish prefill in budget.
        assert!(cpu * 10.0 > 200.0, "CPU per-token {cpu} ms");
    }

    #[test]
    fn service_hints_track_length() {
        let short = TokenLens {
            prefill: 16,
            decode: 4,
        };
        let long = TokenLens {
            prefill: 256,
            decode: 128,
        };
        assert!(
            short.service_hint_ms(MlModel::FunnelTransformer)
                < long.service_hint_ms(MlModel::FunnelTransformer)
        );
    }
}
