//! # paldia-workloads
//!
//! The 16 ML inference workloads the paper evaluates (12 vision models on
//! ImageNet-1k, 4 language models on the Large Movie Review Dataset) plus
//! the SeBS "regular" serverless workloads used in the mixed-workload study
//! (Table III).
//!
//! The paper profiles each workload offline on every hardware generation to
//! obtain `Solo_M` (isolated batch latency) and `FBR_M` (fractional memory
//! bandwidth requirement) — the two quantities Eq. (1) consumes. This crate
//! *is* that profile store: a calibrated analytic table playing the role of
//! the authors' measured profiles. Calibration preserves the relative facts
//! the paper's results rest on:
//!
//! * per-model batch latency lands in the 50–200 ms band on the hardware the
//!   schedulers actually pick (§V);
//! * GoogleNet / DPN-92 / VGG-19 / DenseNet-121 are "high-FBR" vision models
//!   (peak 225 rps in the traces); the rest are low-FBR (peak 450 rps);
//! * language models have far higher execution times, memory footprints and
//!   FBRs than vision models (batch 8, peak 8 rps);
//! * CPU nodes sustain only ~25 rps for high-FBR workloads (§IV-A).

pub mod cards;
pub mod model;
pub mod profile;
pub mod sebs;
pub mod tokens;

pub use cards::{card, ModelCard};
pub use model::{MlModel, ModelClass};
pub use profile::Profile;
pub use sebs::SebsWorkload;
pub use tokens::{TokenCard, TokenLens};
