//! The serving shell's differential gate (DESIGN.md §14): the wall-clock
//! shell over loopback TCP and the virtual-clock session must produce
//! divergence-free decision streams — in both diff directions — and
//! agreeing attribution rollups, on a recorded trace.
//!
//! The inner half (virtual session ≡ batch engine) is proven in
//! `crates/cluster/tests/session_replay.rs`; this is the outer half.

use paldia_experiments::replaycap;
use paldia_obs::TraceAttribution;
use paldia_serve::run_differential;

#[test]
fn shell_and_sim_decision_streams_are_divergence_free() {
    // 30 s of the quick capture, first 150 requests, 400x compressed:
    // about a hundred wall-milliseconds of pacing.
    let trace = replaycap::capture_replay_trace(paldia_workloads::MlModel::GoogleNet, 42, 30)
        .truncated(150);
    assert!(!trace.arrivals.is_empty(), "capture must produce arrivals");

    let o = run_differential(&trace, 400.0, 0).expect("differential runs");

    // The gate proper: empty diffs both ways, and the stronger full-stream
    // byte identity.
    assert!(
        o.forward.is_empty(),
        "shell vs sim diverged: {:?}",
        o.forward.first()
    );
    assert!(
        o.backward.is_empty(),
        "sim vs shell diverged: {:?}",
        o.backward.first()
    );
    assert!(o.events_identical, "full event streams must byte-match");
    assert!(
        o.shell.protocol_errors.is_empty(),
        "clean protocol: {:?}",
        o.shell.protocol_errors
    );
    assert!(
        o.stats.errors.is_empty(),
        "clean client: {:?}",
        o.stats.errors
    );

    // The closed loop accounted for every request.
    assert_eq!(o.stats.sent, trace.arrivals.len());
    assert_eq!(o.stats.done.len(), o.sim_result.completed.len());
    let summary = o.stats.summary.expect("server sends a summary");
    assert_eq!(summary.completed, o.sim_result.completed.len() as u64);
    assert_eq!(summary.unserved, o.sim_result.unserved);

    // Wall stamps cover every decision event, in emission order.
    assert_eq!(o.shell.stamps.len(), o.shell.events.len());
    assert!(o
        .shell
        .stamps
        .windows(2)
        .all(|w| w[0].wall_us <= w[1].wall_us));

    // Attribution rollups from the two streams agree on every shared
    // integer component (request identity, scope, model, batch).
    let a = TraceAttribution::from_events(&o.shell.events);
    let b = TraceAttribution::from_events(&o.sim_events);
    assert_eq!(a.requests.len(), b.requests.len());
    for (x, y) in a.requests.iter().zip(&b.requests) {
        assert_eq!(x.request, y.request);
        assert_eq!(x.scope, y.scope);
        assert_eq!(x.model, y.model);
        assert_eq!(x.batch, y.batch);
    }
    let ra = a.rollup(None).expect("shell rollup");
    let rb = b.rollup(None).expect("sim rollup");
    assert_eq!(ra.requests, rb.requests);

    assert!(o.pass(), "the composed gate verdict agrees");
}

#[test]
fn server_rejects_garbage_hello() {
    use std::io::{BufRead, BufReader, Write};
    use std::net::{TcpListener, TcpStream};

    let listener = TcpListener::bind("127.0.0.1:0").expect("bind loopback");
    let addr = listener.local_addr().expect("local addr");
    let opts = paldia_serve::ServeOpts { speed: 1.0 };
    let server = std::thread::spawn(move || paldia_serve::serve_once(&listener, &opts));

    let mut stream = TcpStream::connect(addr).expect("connect");
    writeln!(stream, "warble florp").expect("send garbage");
    stream.flush().expect("flush");
    let mut reply = String::new();
    BufReader::new(&stream)
        .read_line(&mut reply)
        .expect("read reply");
    assert!(
        reply.starts_with("err"),
        "server names the protocol error: {reply:?}"
    );
    drop(stream);
    assert!(server.join().expect("no panic").is_err());
}
