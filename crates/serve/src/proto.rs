//! The line-delimited TCP protocol between the shell and its clients.
//!
//! One request or reply per `\n`-terminated line, space-separated ASCII
//! fields, no framing beyond that — readable over `nc`, replayable from a
//! file. Model and hardware names use the same lowercase tokens as the
//! recorded-trace format ([`paldia_cluster::replay`]), so a trace line
//! `arrival 0 1 12345 googlenet` maps 1:1 onto the wire line
//! `arr 0 1 12345 googlenet`.
//!
//! Client → server:
//!
//! ```text
//! hello replay <seed> <duration_us> <reserve> <initial_hw> <m1,m2,…>
//! hello live <live_secs> <m1,m2,…>
//! arr <seq> <id> <at_us> <model>     # replay mode: one recorded arrival
//! inv <model>                        # live mode: invoke now
//! end                                # no more arrivals; drain and report
//! ```
//!
//! Server → client:
//!
//! ```text
//! ready                              # session built, clock armed
//! acc <id> <model> <at_us>           # live: arrival accepted, id assigned
//! done <id> <model> <arrival_us> <completed_us> <latency_us> <hw> <batch>
//! summary completed=<n> unserved=<n> cost_usd=<x> cold_starts=<n> transitions=<n> events=<n>
//! bye                                # clean shutdown
//! err <message>                      # protocol error; connection closes
//! ```

use paldia_cluster::{
    instance_from_token, model_from_token, model_token, CompletedRequest, RecordedTrace, RequestId,
    RunResult, SampledArrival,
};
use paldia_hw::InstanceKind;
use paldia_sim::{SimDuration, SimTime};
use paldia_workloads::MlModel;

/// The replay-mode hello: everything the server needs to rebuild the
/// *identical* session the DES would run — seed, horizon, the reserved
/// arrival-sequence block, warm-start hardware, and the model set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayHello {
    /// RNG seed of the recorded scenario.
    pub seed: u64,
    /// Trace duration (virtual).
    pub duration: SimDuration,
    /// Arrival seq block to reserve (`RecordedTrace::reserve`).
    pub reserve: u64,
    /// Hardware the fleet starts warm on.
    pub initial_hw: InstanceKind,
    /// Declared model set, in declaration order.
    pub models: Vec<MlModel>,
}

/// The live-mode hello: a serving horizon and the model set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct LiveHello {
    /// Virtual seconds the live session runs for.
    pub live_secs: u64,
    /// Declared model set.
    pub models: Vec<MlModel>,
}

/// A parsed client → server line.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ClientLine {
    /// `hello replay …`
    HelloReplay(ReplayHello),
    /// `hello live …`
    HelloLive(LiveHello),
    /// `arr <seq> <id> <at_us> <model>`
    Arr(SampledArrival),
    /// `inv <model>`
    Inv(MlModel),
    /// `end`
    End,
}

/// A parsed server → client line.
#[derive(Clone, Debug, PartialEq)]
pub enum ServerLine {
    /// `ready`
    Ready,
    /// `acc <id> <model> <at_us>`
    Acc {
        /// Assigned request id.
        id: u64,
        /// Model invoked.
        model: MlModel,
        /// Virtual stamp the arrival was injected at.
        at_us: u64,
    },
    /// `done …`
    Done(DoneLine),
    /// `summary …`
    Summary(SummaryLine),
    /// `bye`
    Bye,
    /// `err <message>`
    Err(String),
}

/// One completion notification.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct DoneLine {
    /// Request id.
    pub id: u64,
    /// Model served.
    pub model: MlModel,
    /// Gateway arrival, virtual microseconds.
    pub arrival_us: u64,
    /// Completion, virtual microseconds.
    pub completed_us: u64,
    /// End-to-end virtual latency, microseconds.
    pub latency_us: u64,
    /// Hardware the batch executed on.
    pub hw: InstanceKind,
    /// Size of the batch the request rode in.
    pub batch: u32,
}

/// The end-of-session summary.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SummaryLine {
    /// Requests served.
    pub completed: u64,
    /// Requests arrived but never served.
    pub unserved: u64,
    /// Total lease cost, USD.
    pub cost_usd: f64,
    /// Cold starts incurred.
    pub cold_starts: u64,
    /// Hardware transitions taken.
    pub transitions: u64,
    /// Engine events processed.
    pub events: u64,
}

fn models_csv(models: &[MlModel]) -> String {
    models
        .iter()
        .map(|m| model_token(*m))
        .collect::<Vec<_>>()
        .join(",")
}

fn parse_models_csv(csv: &str) -> Result<Vec<MlModel>, String> {
    csv.split(',')
        .map(|t| model_from_token(t).ok_or_else(|| format!("unknown model token `{t}`")))
        .collect()
}

/// Encode the replay hello for `trace`.
pub fn hello_replay_line(trace: &RecordedTrace) -> String {
    format!(
        "hello replay {} {} {} {} {}",
        trace.seed,
        trace.duration.as_micros(),
        trace.reserve,
        trace.initial_hw,
        models_csv(&trace.models)
    )
}

/// Encode a recorded arrival.
pub fn arr_line(sa: &SampledArrival) -> String {
    format!(
        "arr {} {} {} {}",
        sa.seq,
        sa.id.0,
        sa.at.as_micros(),
        model_token(sa.model)
    )
}

/// Encode a completion notification.
pub fn done_line(c: &CompletedRequest) -> String {
    let arrival = c.arrival.as_micros();
    let completed = c.completed.as_micros();
    format!(
        "done {} {} {} {} {} {} {}",
        c.id.0,
        model_token(c.model),
        arrival,
        completed,
        completed.saturating_sub(arrival),
        c.hw,
        c.batch_size
    )
}

/// Encode the end-of-session summary from a finished run.
pub fn summary_line(result: &RunResult, events: u64) -> String {
    format!(
        "summary completed={} unserved={} cost_usd={:.6} cold_starts={} transitions={} events={}",
        result.completed.len(),
        result.unserved,
        result.total_cost(),
        result.cold_starts,
        result.transitions,
        events
    )
}

fn want<T: std::str::FromStr>(field: &str, v: Option<&str>) -> Result<T, String> {
    let raw = v.ok_or_else(|| format!("missing field `{field}`"))?;
    raw.parse()
        .map_err(|_| format!("bad field `{field}`: `{raw}`"))
}

/// Parse one client → server line.
pub fn parse_client_line(line: &str) -> Result<ClientLine, String> {
    let mut f = line.split_whitespace();
    match f.next() {
        Some("hello") => match f.next() {
            Some("replay") => {
                let seed = want("seed", f.next())?;
                let duration_us: u64 = want("duration_us", f.next())?;
                let reserve = want("reserve", f.next())?;
                let hw_tok = f.next().ok_or("missing field `initial_hw`")?;
                let initial_hw = instance_from_token(hw_tok)
                    .ok_or_else(|| format!("unknown hardware token `{hw_tok}`"))?;
                let models = parse_models_csv(f.next().ok_or("missing field `models`")?)?;
                Ok(ClientLine::HelloReplay(ReplayHello {
                    seed,
                    duration: SimDuration::from_micros(duration_us),
                    reserve,
                    initial_hw,
                    models,
                }))
            }
            Some("live") => {
                let live_secs = want("live_secs", f.next())?;
                let models = parse_models_csv(f.next().ok_or("missing field `models`")?)?;
                Ok(ClientLine::HelloLive(LiveHello { live_secs, models }))
            }
            other => Err(format!("unknown hello mode {other:?}")),
        },
        Some("arr") => {
            let seq = want("seq", f.next())?;
            let id: u64 = want("id", f.next())?;
            let at_us: u64 = want("at_us", f.next())?;
            let tok = f.next().ok_or("missing field `model`")?;
            let model =
                model_from_token(tok).ok_or_else(|| format!("unknown model token `{tok}`"))?;
            Ok(ClientLine::Arr(SampledArrival {
                seq,
                id: RequestId(id),
                at: SimTime::from_micros(at_us),
                model,
            }))
        }
        Some("inv") => {
            let tok = f.next().ok_or("missing field `model`")?;
            let model =
                model_from_token(tok).ok_or_else(|| format!("unknown model token `{tok}`"))?;
            Ok(ClientLine::Inv(model))
        }
        Some("end") => Ok(ClientLine::End),
        other => Err(format!("unknown client line {other:?}")),
    }
}

fn kv(field: &str, v: Option<&str>) -> Result<String, String> {
    let raw = v.ok_or_else(|| format!("missing field `{field}`"))?;
    let (k, val) = raw
        .split_once('=')
        .ok_or_else(|| format!("bad field `{raw}`"))?;
    if k != field {
        return Err(format!("expected `{field}=…`, got `{raw}`"));
    }
    Ok(val.to_string())
}

/// Parse one server → client line.
pub fn parse_server_line(line: &str) -> Result<ServerLine, String> {
    let mut f = line.split_whitespace();
    match f.next() {
        Some("ready") => Ok(ServerLine::Ready),
        Some("acc") => {
            let id = want("id", f.next())?;
            let tok = f.next().ok_or("missing field `model`")?;
            let model =
                model_from_token(tok).ok_or_else(|| format!("unknown model token `{tok}`"))?;
            let at_us = want("at_us", f.next())?;
            Ok(ServerLine::Acc { id, model, at_us })
        }
        Some("done") => {
            let id = want("id", f.next())?;
            let tok = f.next().ok_or("missing field `model`")?;
            let model =
                model_from_token(tok).ok_or_else(|| format!("unknown model token `{tok}`"))?;
            let arrival_us = want("arrival_us", f.next())?;
            let completed_us = want("completed_us", f.next())?;
            let latency_us = want("latency_us", f.next())?;
            let hw_tok = f.next().ok_or("missing field `hw`")?;
            let hw = instance_from_token(hw_tok)
                .ok_or_else(|| format!("unknown hardware token `{hw_tok}`"))?;
            let batch = want("batch", f.next())?;
            Ok(ServerLine::Done(DoneLine {
                id,
                model,
                arrival_us,
                completed_us,
                latency_us,
                hw,
                batch,
            }))
        }
        Some("summary") => {
            let completed = kv("completed", f.next())?
                .parse()
                .map_err(|_| "bad completed")?;
            let unserved = kv("unserved", f.next())?
                .parse()
                .map_err(|_| "bad unserved")?;
            let cost_usd = kv("cost_usd", f.next())?
                .parse()
                .map_err(|_| "bad cost_usd")?;
            let cold_starts = kv("cold_starts", f.next())?
                .parse()
                .map_err(|_| "bad cold_starts")?;
            let transitions = kv("transitions", f.next())?
                .parse()
                .map_err(|_| "bad transitions")?;
            let events = kv("events", f.next())?.parse().map_err(|_| "bad events")?;
            Ok(ServerLine::Summary(SummaryLine {
                completed,
                unserved,
                cost_usd,
                cold_starts,
                transitions,
                events,
            }))
        }
        Some("bye") => Ok(ServerLine::Bye),
        Some("err") => Ok(ServerLine::Err(
            line.trim_start()
                .strip_prefix("err")
                .unwrap_or("")
                .trim()
                .to_string(),
        )),
        other => Err(format!("unknown server line {other:?}")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use paldia_cluster::WorkloadSpec;
    use paldia_traces::RateTrace;

    fn trace() -> RecordedTrace {
        let w = WorkloadSpec::new(
            MlModel::GoogleNet,
            RateTrace::constant(30.0, SimDuration::from_secs(5), SimDuration::from_secs(1)),
        );
        RecordedTrace::record(&[w], 7, InstanceKind::G3s_xlarge)
    }

    #[test]
    fn hello_and_arr_round_trip() {
        let t = trace();
        let hello = hello_replay_line(&t);
        match parse_client_line(&hello).expect("hello parses") {
            ClientLine::HelloReplay(h) => {
                assert_eq!(h.seed, t.seed);
                assert_eq!(h.duration, t.duration);
                assert_eq!(h.reserve, t.reserve);
                assert_eq!(h.initial_hw, t.initial_hw);
                assert_eq!(h.models, t.models);
            }
            other => panic!("expected hello replay, got {other:?}"),
        }
        for sa in &t.arrivals {
            assert_eq!(
                parse_client_line(&arr_line(sa)).expect("arr parses"),
                ClientLine::Arr(*sa)
            );
        }
        assert_eq!(parse_client_line("end").unwrap(), ClientLine::End);
    }

    #[test]
    fn server_lines_round_trip() {
        let done = "done 3 googlenet 100 900 800 g3s.xlarge 4";
        match parse_server_line(done).expect("done parses") {
            ServerLine::Done(d) => {
                assert_eq!(d.id, 3);
                assert_eq!(d.model, MlModel::GoogleNet);
                assert_eq!(d.latency_us, 800);
                assert_eq!(d.batch, 4);
            }
            other => panic!("expected done, got {other:?}"),
        }
        let s = "summary completed=10 unserved=0 cost_usd=0.123456 cold_starts=1 transitions=0 events=99";
        match parse_server_line(s).expect("summary parses") {
            ServerLine::Summary(sl) => {
                assert_eq!(sl.completed, 10);
                assert_eq!(sl.events, 99);
                assert!((sl.cost_usd - 0.123456).abs() < 1e-9);
            }
            other => panic!("expected summary, got {other:?}"),
        }
        assert_eq!(parse_server_line("ready").unwrap(), ServerLine::Ready);
        assert_eq!(parse_server_line("bye").unwrap(), ServerLine::Bye);
        assert!(matches!(
            parse_server_line("err boom boom").unwrap(),
            ServerLine::Err(m) if m == "boom boom"
        ));
    }

    #[test]
    fn garbage_is_rejected_with_field_names() {
        let e = parse_client_line("arr 0 1 notanumber googlenet").unwrap_err();
        assert!(e.contains("at_us"), "error names the field: {e}");
        assert!(parse_client_line("warble").is_err());
        assert!(parse_server_line("warble").is_err());
    }
}
