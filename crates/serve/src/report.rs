//! `target/serve-report.json` — the CI artifact of the `serve-smoke`
//! stage. Handwritten JSON, like `BENCH_repro.json` and the experiment
//! reports: the workspace builds offline, without serde.

use std::io::Write;
use std::path::Path;

use crate::smoke::{SmokeOpts, SmokeOutcome};

/// Render the report JSON.
pub fn render_report(opts: &SmokeOpts, o: &SmokeOutcome) -> String {
    let mut s = String::new();
    s.push_str("{\n");
    s.push_str("  \"schema\": \"paldia-serve-smoke-v1\",\n");
    s.push_str(&format!("  \"pass\": {},\n", o.pass()));
    s.push_str(&format!(
        "  \"opts\": {{\"requests\": {}, \"speed\": {}, \"seed\": {}}},\n",
        opts.requests, opts.speed, opts.seed
    ));
    s.push_str(&format!(
        "  \"trace\": {{\"arrivals\": {}, \"duration_us\": {}}},\n",
        o.trace_arrivals, o.trace_duration_us
    ));
    s.push_str(&format!(
        "  \"shell\": {{\"completed\": {}, \"unserved\": {}, \"cold_starts\": {}, \
         \"transitions\": {}, \"cost_usd\": {:.6}, \"decision_events\": {}, \
         \"wall_ms\": {:.1}, \"protocol_errors\": {}}},\n",
        o.shell.result.completed.len(),
        o.shell.result.unserved,
        o.shell.result.cold_starts,
        o.shell.result.transitions,
        o.shell.result.total_cost(),
        o.shell.events.len(),
        o.shell.wall.as_secs_f64() * 1e3,
        o.shell.protocol_errors.len(),
    ));
    s.push_str(&format!(
        "  \"sim\": {{\"completed\": {}, \"unserved\": {}, \"cold_starts\": {}, \
         \"transitions\": {}, \"cost_usd\": {:.6}, \"decision_events\": {}}},\n",
        o.sim_result.completed.len(),
        o.sim_result.unserved,
        o.sim_result.cold_starts,
        o.sim_result.transitions,
        o.sim_result.total_cost(),
        o.sim_events.len(),
    ));
    s.push_str(&format!(
        "  \"client\": {{\"sent\": {}, \"done\": {}, \"errors\": {}, \"wall_ms\": {:.1}}},\n",
        o.stats.sent,
        o.stats.done.len(),
        o.stats.errors.len(),
        o.stats.wall.as_secs_f64() * 1e3,
    ));
    s.push_str(&format!(
        "  \"diff\": {{\"forward_divergent\": {}, \"backward_divergent\": {}, \
         \"aligned\": {}, \"events_identical\": {}}}\n",
        o.forward.total_divergent,
        o.backward.total_divergent,
        o.forward.aligned,
        o.events_identical,
    ));
    s.push_str("}\n");
    s
}

/// Write the report to `path`, creating parent directories as needed.
pub fn write_report(path: &Path, opts: &SmokeOpts, o: &SmokeOutcome) -> Result<(), String> {
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir).map_err(|e| format!("creating {}: {e}", dir.display()))?;
    }
    let mut f =
        std::fs::File::create(path).map_err(|e| format!("creating {}: {e}", path.display()))?;
    f.write_all(render_report(opts, o).as_bytes())
        .map_err(|e| format!("writing {}: {e}", path.display()))
}
