//! The differential gate: one recorded trace through both executors —
//! the wall-clock shell over loopback TCP, and the virtual-clock session
//! — with the decision streams diffed in both directions (DESIGN.md §14).
//!
//! This is the outer half of the serving shell's guarantee. The inner
//! half (virtual session ≡ batch engine, byte for byte) is proven by
//! `crates/cluster/tests/session_replay.rs`; together they pin
//! shell ≡ session ≡ simulation on every replayed trace. The CI stage
//! `serve-smoke` runs [`run_smoke`] at 20x over 200 requests of the quick
//! capture and publishes `target/serve-report.json`.

use std::net::{SocketAddr, TcpListener};
use std::path::PathBuf;

use paldia_cluster::{run_replay_virtual, RecordedTrace, RunResult, SimConfig, SimSession};
use paldia_core::PaldiaScheduler;
use paldia_experiments::replaycap;
use paldia_hw::Catalog;
use paldia_obs::{diff_decision_streams, DiffReport, TraceEvent, VecSink};

use crate::loadgen::{self, ReplayStats};
use crate::server::{serve_once, ServeOpts, ServeOutcome};

/// Smoke-run knobs (the CI stage's defaults).
#[derive(Clone, Debug)]
pub struct SmokeOpts {
    /// Requests to keep from the quick capture.
    pub requests: usize,
    /// Replay speedup.
    pub speed: f64,
    /// Capture seed.
    pub seed: u64,
    /// Loopback port (0 = ephemeral).
    pub port: u16,
    /// Where to write the JSON report, if anywhere.
    pub report: Option<PathBuf>,
}

impl Default for SmokeOpts {
    fn default() -> Self {
        SmokeOpts {
            requests: 200,
            speed: 20.0,
            seed: 42,
            port: 0,
            report: None,
        }
    }
}

/// Everything the differential produced, for the report and the verdict.
#[derive(Debug)]
pub struct SmokeOutcome {
    /// Arrivals in the replayed trace.
    pub trace_arrivals: usize,
    /// Trace duration, virtual microseconds.
    pub trace_duration_us: u64,
    /// The shell side (server).
    pub shell: ServeOutcome,
    /// The client side (load generator).
    pub stats: ReplayStats,
    /// The virtual-clock side.
    pub sim_result: RunResult,
    /// The virtual side's decision/span stream.
    pub sim_events: Vec<TraceEvent>,
    /// Shell-vs-sim decision diff.
    pub forward: DiffReport,
    /// Sim-vs-shell decision diff.
    pub backward: DiffReport,
    /// Stronger than the decision diff: the full event streams byte-match.
    pub events_identical: bool,
}

impl SmokeOutcome {
    /// The gate: both diff directions empty, full streams identical, no
    /// protocol errors, and every sent request accounted for.
    pub fn pass(&self) -> bool {
        self.forward.is_empty()
            && self.backward.is_empty()
            && self.events_identical
            && self.shell.protocol_errors.is_empty()
            && self.stats.errors.is_empty()
            && self.stats.done.len() == self.sim_result.completed.len()
    }
}

/// Run `trace` through the virtual-clock session executor (traced) —
/// the DES side of the differential. Executed through the bounded worker
/// pool so the smoke exercises the same scheduling substrate the
/// experiment runner uses.
pub fn virtual_outcome(trace: &RecordedTrace) -> (RunResult, Vec<TraceEvent>) {
    let mut out = paldia_sim::pool::run_indexed(1, |_| {
        let cfg = SimConfig::with_seed(trace.seed);
        let mut sched = PaldiaScheduler::new();
        let mut sink = VecSink::new();
        let result = {
            let mut session = SimSession::new_traced(
                trace.models.clone(),
                &mut sched,
                trace.initial_hw,
                Catalog::table_ii(),
                &cfg,
                trace.trace_end(),
                trace.reserve,
                &mut sink,
            );
            run_replay_virtual(&mut session, &trace.arrivals);
            session.finish()
        };
        (result, sink.into_events())
    });
    out.pop().expect("run_indexed(1) yields one result")
}

/// Replay `trace` through the shell (loopback TCP, wall clock at
/// `speed`x) *and* the virtual session, and diff the decision streams
/// both ways.
pub fn run_differential(
    trace: &RecordedTrace,
    speed: f64,
    port: u16,
) -> Result<SmokeOutcome, String> {
    let listener = TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| format!("binding 127.0.0.1:{port}: {e}"))?;
    let addr: SocketAddr = listener
        .local_addr()
        .map_err(|e| format!("resolving local addr: {e}"))?;

    let serve_opts = ServeOpts { speed };
    let server = std::thread::spawn(move || serve_once(&listener, &serve_opts));
    let client_trace = trace.clone();
    let client = std::thread::spawn(move || loadgen::replay_trace(addr, &client_trace, speed));

    // The DES side runs on this thread while the shell replays on the wall.
    let (sim_result, sim_events) = virtual_outcome(trace);

    let shell = server
        .join()
        .map_err(|_| "server thread panicked".to_string())??;
    let stats = client
        .join()
        .map_err(|_| "client thread panicked".to_string())??;

    let forward = diff_decision_streams(&shell.events, &sim_events);
    let backward = diff_decision_streams(&sim_events, &shell.events);
    let events_identical = shell.events == sim_events;
    Ok(SmokeOutcome {
        trace_arrivals: trace.arrivals.len(),
        trace_duration_us: trace.duration.as_micros(),
        shell,
        stats,
        sim_result,
        sim_events,
        forward,
        backward,
        events_identical,
    })
}

/// The CI smoke: capture the quick trace, truncate, run the differential,
/// optionally write the report.
pub fn run_smoke(opts: &SmokeOpts) -> Result<SmokeOutcome, String> {
    let trace = replaycap::quick_replay_trace(opts.seed).truncated(opts.requests);
    if trace.arrivals.is_empty() {
        return Err("quick capture produced no arrivals".into());
    }
    let outcome = run_differential(&trace, opts.speed, opts.port)?;
    if let Some(path) = &opts.report {
        crate::report::write_report(path, opts, &outcome)?;
    }
    Ok(outcome)
}
