//! # paldia-serve
//!
//! The wall-clock serving shell over the deterministic scheduler core
//! (DESIGN.md §14). Everything time- and thread-shaped lives *here*, in
//! the `shell` boundary class; the domain logic the shell drives — the
//! session executor, the batcher, `PaldiaScheduler` — is the exact code
//! the discrete-event simulation runs, compiled once and shared.
//!
//! The split is the [`paldia_sim::Clock`] contract: the replay driver
//! ([`paldia_cluster::run_replay`]) calls `clock.pace(next)` before acting
//! at virtual time `next`, and pacing gates *when* the executor acts,
//! never *what* it does. [`clock::WallClock`] sleeps until the wall
//! deadline `epoch + next / speedup`; the simulation's `VirtualClock`
//! returns immediately. Because the driver, the event order, and every
//! decision input are identical on both clocks, the shell's decision
//! stream must be byte-for-byte the simulation's — and the differential
//! gate ([`smoke`], `tests/differential.rs`, the `serve-smoke` CI stage)
//! asserts exactly that through `paldia_obs::diff_decision_streams`, in
//! both directions, on every recorded trace it replays.
//!
//! Modules:
//!
//! * [`clock`] — the wall implementation of the `Clock` contract.
//! * [`sink`] — wall-clock-stamped trace sink (shell-only; the stamps
//!   ride in a sidecar so the decision JSONL stays diffable).
//! * [`proto`] — the line-delimited TCP protocol, both directions.
//! * [`server`] — one-connection serving loop (replay and live modes).
//! * [`loadgen`] — closed-loop client replaying a recorded trace.
//! * [`smoke`] — the differential gate: shell vs. DES on one trace.
//! * [`report`] — `target/serve-report.json` writer for CI.

#![warn(missing_docs)]

pub mod clock;
pub mod loadgen;
pub mod proto;
pub mod report;
pub mod server;
pub mod sink;
pub mod smoke;

pub use clock::WallClock;
pub use loadgen::{replay_trace, ReplayStats};
pub use server::{serve_once, ServeOpts, ServeOutcome};
pub use sink::{WallStamp, WallStampedSink};
pub use smoke::{run_differential, run_smoke, virtual_outcome, SmokeOpts, SmokeOutcome};
