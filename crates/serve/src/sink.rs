//! Wall-clock-stamped trace sink — the shell-class variant of the
//! `paldia-obs` sink family (DESIGN.md §14).
//!
//! The deterministic sinks (`VecSink`, `JsonlSink`, …) carry only virtual
//! time, which is what makes two decision logs diffable. A live operator
//! also wants to know *when on the wall* each decision was emitted, but
//! stamping the events themselves would make the shell's log differ from
//! the simulation's by construction. [`WallStampedSink`] threads every
//! event through an inner deterministic sink untouched and records the
//! `(seq, wall_us)` pair on the side; [`write_stamps_jsonl`] writes that
//! sidecar next to the decision JSONL. The decision log diffs clean, the
//! stamps answer the latency questions.
//!
//! This type cannot live in `paldia-obs`: `obs` is in the
//! `deterministic-core` class and is fenced from `std::time` by lint rule
//! `d2` — which is exactly the confinement the boundary graph is for.

use std::io::{self, Write};
use std::path::Path;
use std::time::Instant;

use paldia_obs::{TraceEvent, TraceSink};

/// One wall stamp: trace event `seq` was recorded `wall_us` microseconds
/// after the sink was constructed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WallStamp {
    /// Sequence number of the stamped [`TraceEvent`].
    pub seq: u64,
    /// Microseconds since the sink's construction.
    pub wall_us: u64,
}

/// A [`TraceSink`] adapter that forwards events to an inner deterministic
/// sink verbatim and keeps wall stamps on the side.
pub struct WallStampedSink<'a> {
    inner: &'a mut dyn TraceSink,
    epoch: Instant,
    stamps: Vec<WallStamp>,
}

impl<'a> WallStampedSink<'a> {
    /// Wrap `inner`; the stamp epoch is *now*.
    pub fn new(inner: &'a mut dyn TraceSink) -> Self {
        WallStampedSink {
            inner,
            epoch: Instant::now(),
            stamps: Vec::new(),
        }
    }

    /// Take the stamps accumulated so far, leaving the sink empty.
    pub fn take_stamps(&mut self) -> Vec<WallStamp> {
        std::mem::take(&mut self.stamps)
    }
}

impl TraceSink for WallStampedSink<'_> {
    fn record(&mut self, event: TraceEvent) {
        self.stamps.push(WallStamp {
            seq: event.seq,
            wall_us: self.epoch.elapsed().as_micros() as u64,
        });
        self.inner.record(event);
    }
}

/// Write the stamp sidecar as JSONL (`{"seq":N,"wall_us":N}` per line).
pub fn write_stamps_jsonl(path: &Path, stamps: &[WallStamp]) -> io::Result<()> {
    let mut out = io::BufWriter::new(std::fs::File::create(path)?);
    for s in stamps {
        writeln!(out, "{{\"seq\":{},\"wall_us\":{}}}", s.seq, s.wall_us)?;
    }
    out.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use paldia_obs::VecSink;

    #[test]
    fn events_pass_through_unmodified_and_stamps_track_seq() {
        let mut inner = VecSink::new();
        let mut sink = WallStampedSink::new(&mut inner);
        let ev = |seq| TraceEvent {
            seq,
            at: paldia_sim::SimTime::from_micros(seq * 10),
            scope: 0,
            kind: paldia_obs::TraceEventKind::RequestArrived {
                request: seq,
                model: paldia_workloads::MlModel::GoogleNet,
            },
        };
        sink.record(ev(0));
        sink.record(ev(1));
        let stamps = sink.take_stamps();
        drop(sink);
        assert_eq!(stamps.iter().map(|s| s.seq).collect::<Vec<_>>(), vec![0, 1]);
        assert!(
            stamps[0].wall_us <= stamps[1].wall_us,
            "stamps are monotone"
        );
        assert_eq!(inner.into_events(), vec![ev(0), ev(1)]);
    }
}
