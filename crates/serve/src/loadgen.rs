//! Closed-loop load generator: replay a recorded trace against a running
//! shell in scaled real time.
//!
//! The sender thread paces each `arr` line to its wall deadline
//! `at / speed` past the epoch (the moment `ready` was received), so the
//! shell sees the same inter-arrival gaps the trace recorded, compressed
//! by the speedup. A reader thread concurrently collects `done` lines —
//! the loop is closed: the run ends when the server has confirmed every
//! completion and said `bye`, not when the last request was sent.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::{Duration, Instant};

use paldia_cluster::RecordedTrace;

use crate::proto::{self, DoneLine, ServerLine, SummaryLine};

/// What the generator observed.
#[derive(Clone, Debug, Default)]
pub struct ReplayStats {
    /// Arrival lines sent.
    pub sent: usize,
    /// Completion notifications received, arrival order as received.
    pub done: Vec<DoneLine>,
    /// The end-of-session summary, if the server sent one.
    pub summary: Option<SummaryLine>,
    /// `err` lines and unparseable replies.
    pub errors: Vec<String>,
    /// Wall-clock from `ready` to `bye`.
    pub wall: Duration,
}

/// Connect to `addr`, replay `trace` at `speed`x, and collect the
/// server's replies until it says `bye`.
pub fn replay_trace(
    addr: SocketAddr,
    trace: &RecordedTrace,
    speed: f64,
) -> Result<ReplayStats, String> {
    let speed = speed.max(1e-6);
    let stream = TcpStream::connect(addr).map_err(|e| format!("connecting to {addr}: {e}"))?;
    stream.set_nodelay(true).ok();
    let reader = stream
        .try_clone()
        .map_err(|e| format!("cloning stream: {e}"))?;
    let mut reader = BufReader::new(reader);
    let mut writer = BufWriter::new(stream);

    let send = |w: &mut BufWriter<TcpStream>, line: &str| -> Result<(), String> {
        writeln!(w, "{line}")
            .and_then(|_| w.flush())
            .map_err(|e| format!("sending `{line}`: {e}"))
    };

    send(&mut writer, &proto::hello_replay_line(trace))?;
    let mut first = String::new();
    reader
        .read_line(&mut first)
        .map_err(|e| format!("waiting for ready: {e}"))?;
    match proto::parse_server_line(first.trim()) {
        Ok(ServerLine::Ready) => {}
        Ok(ServerLine::Err(e)) => return Err(format!("server rejected hello: {e}")),
        other => return Err(format!("expected ready, got {other:?}")),
    }

    // Reader thread: collect replies until bye/EOF.
    let collector = std::thread::spawn(move || {
        let mut done = Vec::new();
        let mut summary = None;
        let mut errors = Vec::new();
        for line in reader.lines() {
            let line = match line {
                Ok(l) if l.trim().is_empty() => continue,
                Ok(l) => l,
                Err(e) => {
                    errors.push(format!("reading reply: {e}"));
                    break;
                }
            };
            match proto::parse_server_line(line.trim()) {
                Ok(ServerLine::Done(d)) => done.push(d),
                Ok(ServerLine::Summary(s)) => summary = Some(s),
                Ok(ServerLine::Bye) => break,
                Ok(ServerLine::Err(e)) => errors.push(format!("server error: {e}")),
                Ok(ServerLine::Ready) | Ok(ServerLine::Acc { .. }) => {}
                Err(e) => errors.push(format!("unparseable reply `{line}`: {e}")),
            }
        }
        (done, summary, errors)
    });

    // Sender: pace each arrival to its scaled wall deadline.
    let epoch = Instant::now();
    let mut sent = 0usize;
    for sa in &trace.arrivals {
        let due = epoch + Duration::from_secs_f64(sa.at.as_micros() as f64 / (speed * 1e6));
        if let Some(wait) = due.checked_duration_since(Instant::now()) {
            if wait > Duration::ZERO {
                std::thread::sleep(wait);
            }
        }
        send(&mut writer, &proto::arr_line(sa))?;
        sent += 1;
    }
    send(&mut writer, "end")?;

    let (done, summary, errors) = collector
        .join()
        .map_err(|_| "reply collector panicked".to_string())?;
    Ok(ReplayStats {
        sent,
        done,
        summary,
        errors,
        wall: epoch.elapsed(),
    })
}
