//! The one-connection serving loop: live requests through the exact
//! policy code path the simulation runs (DESIGN.md §14).
//!
//! A connection is one session. The client's `hello` names the mode:
//!
//! * **replay** — the client streams a recorded trace's arrivals under
//!   their original `(seq, id, at)` identities; the server rebuilds the
//!   *identical* [`SimSession`] the DES would run (same seed, same
//!   reserved seq block, same warm-start hardware) and drives it with the
//!   shared [`run_replay`] driver on a [`WallClock`]. Because pacing is
//!   the only wall-dependent act, the resulting decision stream diffs
//!   clean against the simulation's — the differential gate.
//! * **live** — the client invokes models ad hoc (`inv <model>`); each
//!   arrival is stamped with the wall-derived virtual now and injected.
//!   Live sessions are *not* replayable against a recorded trace (their
//!   arrival times are wall-dependent by definition), but they still emit
//!   the full `paldia-obs` decision taxonomy.
//!
//! A reader thread owns the socket's read half and feeds parsed
//! [`ClientLine`]s over a channel; the serving thread owns the session,
//! the clock, and the write half. Completion notifications are written as
//! the executor drains them — in replay mode that is when the clock next
//! advances (the next arrival, or end-of-trace drain).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream};
use std::sync::mpsc::{self, Receiver, RecvTimeoutError};
use std::time::{Duration, Instant};

use paldia_cluster::{
    run_replay, ArrivalSource, CompletedRequest, ReplayItem, RunResult, SimConfig, SimSession,
};
use paldia_core::PaldiaScheduler;
use paldia_hw::Catalog;
use paldia_obs::{TraceEvent, VecSink};
use paldia_sim::SimTime;

use crate::clock::WallClock;
use crate::proto::{self, ClientLine, LiveHello, ReplayHello};
use crate::sink::{WallStamp, WallStampedSink};

/// How long the live loop waits for a client line before re-checking the
/// clock for due events.
const LIVE_POLL: Duration = Duration::from_millis(20);

/// Server knobs.
#[derive(Clone, Copy, Debug)]
pub struct ServeOpts {
    /// Virtual-to-wall speedup (1.0 = real time, 20.0 = 20x compressed).
    pub speed: f64,
}

impl Default for ServeOpts {
    fn default() -> Self {
        ServeOpts { speed: 1.0 }
    }
}

/// Everything one served connection produced.
#[derive(Debug)]
pub struct ServeOutcome {
    /// The finished run, identical in shape to a simulation's.
    pub result: RunResult,
    /// The decision/span stream (virtual-time only — diffable).
    pub events: Vec<TraceEvent>,
    /// Wall stamps for `events`, sidecar material.
    pub stamps: Vec<WallStamp>,
    /// Wall-clock the session took end to end.
    pub wall: Duration,
    /// Protocol violations tolerated mid-session (empty on a clean run).
    pub protocol_errors: Vec<String>,
}

/// Arrival source fed by the reader thread's channel. Replay mode only:
/// a non-`arr` line (other than `end`) is recorded as a protocol error
/// and treated as end-of-trace, so the session still drains and reports.
struct ChannelSource<'a> {
    rx: &'a Receiver<Result<ClientLine, String>>,
    errors: &'a mut Vec<String>,
}

impl ArrivalSource for ChannelSource<'_> {
    fn next(&mut self) -> ReplayItem {
        loop {
            match self.rx.recv() {
                Ok(Ok(ClientLine::Arr(sa))) => return ReplayItem::Arrival(sa),
                Ok(Ok(ClientLine::End)) => return ReplayItem::End,
                Ok(Ok(other)) => {
                    self.errors
                        .push(format!("unexpected line in replay: {other:?}"));
                }
                Ok(Err(e)) => {
                    self.errors.push(e);
                    return ReplayItem::End;
                }
                Err(_) => {
                    self.errors.push("client disconnected mid-replay".into());
                    return ReplayItem::End;
                }
            }
        }
    }
}

fn send_line(w: &mut BufWriter<TcpStream>, line: &str) -> Result<(), String> {
    writeln!(w, "{line}")
        .and_then(|_| w.flush())
        .map_err(|e| format!("writing to client: {e}"))
}

/// Accept one connection on `listener` and serve it to completion.
///
/// Blocks until the client's session ends (its `end` line, disconnect, or
/// the live horizon). Returns the run result plus the traced decision
/// stream; protocol errors are collected, not fatal, so a half-finished
/// replay still drains and reports.
pub fn serve_once(listener: &TcpListener, opts: &ServeOpts) -> Result<ServeOutcome, String> {
    let (stream, peer) = listener
        .accept()
        .map_err(|e| format!("accepting connection: {e}"))?;
    stream.set_nodelay(true).ok();
    let reader = stream
        .try_clone()
        .map_err(|e| format!("cloning stream for {peer}: {e}"))?;
    let mut writer = BufWriter::new(stream);

    // Reader thread: socket lines → parsed ClientLine channel. Exits on
    // EOF or socket error; dropping the sender signals the serving loop.
    let (tx, rx) = mpsc::channel::<Result<ClientLine, String>>();
    let reader_thread = std::thread::spawn(move || {
        let buf = BufReader::new(reader);
        for line in buf.lines() {
            let msg = match line {
                Ok(l) if l.trim().is_empty() => continue,
                Ok(l) => proto::parse_client_line(&l),
                Err(e) => Err(format!("reading from client: {e}")),
            };
            let fatal = msg.is_err();
            if tx.send(msg).is_err() || fatal {
                break;
            }
        }
    });

    let outcome = match rx.recv() {
        Ok(Ok(ClientLine::HelloReplay(h))) => serve_replay(&h, &rx, &mut writer, opts),
        Ok(Ok(ClientLine::HelloLive(h))) => serve_live(&h, &rx, &mut writer, opts),
        Ok(Ok(other)) => {
            send_line(&mut writer, &format!("err expected hello, got {other:?}")).ok();
            Err(format!("client spoke before hello: {other:?}"))
        }
        Ok(Err(e)) => {
            send_line(&mut writer, &format!("err {e}")).ok();
            Err(format!("bad hello: {e}"))
        }
        Err(_) => Err("client disconnected before hello".into()),
    };
    send_line(&mut writer, "bye").ok();
    drop(writer);
    reader_thread.join().ok();
    outcome
}

/// Replay mode: rebuild the recorded session and drive it with the shared
/// replay driver on the wall clock.
fn serve_replay(
    h: &ReplayHello,
    rx: &Receiver<Result<ClientLine, String>>,
    writer: &mut BufWriter<TcpStream>,
    opts: &ServeOpts,
) -> Result<ServeOutcome, String> {
    let cfg = SimConfig::with_seed(h.seed);
    let trace_end = SimTime::from_micros(h.duration.as_micros());
    let mut sched = PaldiaScheduler::new();
    let mut events_sink = VecSink::new();
    let mut sink = WallStampedSink::new(&mut events_sink);
    let start = Instant::now();
    let mut protocol_errors = Vec::new();

    let (result, engine_events) = {
        let mut session = SimSession::new_traced(
            h.models.clone(),
            &mut sched,
            h.initial_hw,
            Catalog::table_ii(),
            &cfg,
            trace_end,
            h.reserve,
            &mut sink,
        );
        send_line(writer, "ready")?;
        let mut clock = WallClock::new(opts.speed);
        let mut source = ChannelSource {
            rx,
            errors: &mut protocol_errors,
        };
        let mut send_err: Option<String> = None;
        run_replay(
            &mut session,
            &mut source,
            &mut clock,
            |c: &CompletedRequest| {
                if send_err.is_none() {
                    send_err = send_line(writer, &proto::done_line(c)).err();
                }
            },
        );
        if let Some(e) = send_err {
            protocol_errors.push(e);
        }
        let engine_events = session.events();
        (session.finish(), engine_events)
    };
    let stamps = sink.take_stamps();
    drop(sink);
    let events = events_sink.into_events();
    send_line(writer, &proto::summary_line(&result, engine_events))?;
    Ok(ServeOutcome {
        result,
        events,
        stamps,
        wall: start.elapsed(),
        protocol_errors,
    })
}

/// Live mode: poll the channel, stamp `inv` arrivals with the wall-derived
/// virtual now, and step the session as virtual deadlines come due.
fn serve_live(
    h: &LiveHello,
    rx: &Receiver<Result<ClientLine, String>>,
    writer: &mut BufWriter<TcpStream>,
    opts: &ServeOpts,
) -> Result<ServeOutcome, String> {
    let cfg = SimConfig::default();
    let trace_end = SimTime::from_secs(h.live_secs.max(1));
    let initial_hw = *Catalog::table_ii()
        .by_cost_ascending()
        .first()
        .ok_or("catalog has no hardware")?;
    let mut sched = PaldiaScheduler::new();
    let mut events_sink = VecSink::new();
    let mut sink = WallStampedSink::new(&mut events_sink);
    let start = Instant::now();
    let mut protocol_errors = Vec::new();

    let (result, engine_events) = {
        let mut session = SimSession::new_traced(
            h.models.clone(),
            &mut sched,
            initial_hw,
            Catalog::table_ii(),
            &cfg,
            trace_end,
            0,
            &mut sink,
        );
        send_line(writer, "ready")?;
        let clock = WallClock::new(opts.speed);
        loop {
            // Step everything the wall has made due.
            let now_v = clock.now_virtual();
            while let Some(t) = session.next_event_time() {
                if t > now_v {
                    break;
                }
                if session.step().is_none() {
                    break;
                }
                for c in session.drain_completions() {
                    send_line(writer, &proto::done_line(&c))?;
                }
            }
            if now_v >= trace_end {
                break;
            }
            // Sleep until the next virtual deadline or the next line.
            let wait = session
                .next_event_time()
                .filter(|t| *t < session.horizon())
                .and_then(|t| clock.wall_until(t))
                .map_or(LIVE_POLL, |d| d.min(LIVE_POLL));
            match rx.recv_timeout(wait) {
                Ok(Ok(ClientLine::Inv(model))) => {
                    let at = clock.now_virtual().min(trace_end);
                    let id = session.inject_arrival(at, model);
                    send_line(
                        writer,
                        &format!(
                            "acc {} {} {}",
                            id.0,
                            paldia_cluster::model_token(model),
                            at.as_micros()
                        ),
                    )?;
                }
                Ok(Ok(ClientLine::End)) => break,
                Ok(Ok(other)) => {
                    protocol_errors.push(format!("unexpected line in live mode: {other:?}"));
                }
                Ok(Err(e)) => {
                    protocol_errors.push(e);
                    break;
                }
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => break,
            }
        }
        // Drain to the horizon virtually so every remaining completion is
        // notified before the summary.
        while session.step().is_some() {
            for c in session.drain_completions() {
                send_line(writer, &proto::done_line(&c))?;
            }
        }
        for c in session.drain_completions() {
            send_line(writer, &proto::done_line(&c))?;
        }
        let engine_events = session.events();
        (session.finish(), engine_events)
    };
    let stamps = sink.take_stamps();
    drop(sink);
    let events = events_sink.into_events();
    send_line(writer, &proto::summary_line(&result, engine_events))?;
    Ok(ServeOutcome {
        result,
        events,
        stamps,
        wall: start.elapsed(),
        protocol_errors,
    })
}
