//! The wall-clock side of the [`Clock`] contract (DESIGN.md §14).
//!
//! [`WallClock`] maps virtual time onto the wall: virtual microsecond `t`
//! lands at wall instant `epoch + t / speedup`. `pace(next)` sleeps until
//! that deadline (or returns immediately when the wall is already past
//! it), so a replay at `speedup = 1.0` unfolds in real time and a replay
//! at `speedup = 20.0` runs twenty times compressed. Nothing the domain
//! logic observes is touched — pacing only delays the executor.
//!
//! This type is deliberately *not* in `paldia-sim`: the deterministic
//! crates are fenced from `std::time::Instant` by the `d2` lint rule and
//! the reachability pass, and the boundary graph only lets the `shell`
//! class reach the wall.

use std::time::{Duration, Instant};

use paldia_sim::{Clock, SimTime};

/// Wall-clock pacing for the replay driver: virtual time `t` is due at
/// wall instant `epoch + t / speedup`.
#[derive(Debug)]
pub struct WallClock {
    epoch: Instant,
    speedup: f64,
}

impl WallClock {
    /// A clock whose epoch (virtual zero) is *now*. `speedup` is clamped
    /// below by a tiny positive value so a zero/negative input cannot
    /// stall the replay forever.
    pub fn new(speedup: f64) -> Self {
        WallClock {
            epoch: Instant::now(),
            speedup: speedup.max(1e-6),
        }
    }

    /// The speedup factor the clock was built with (after clamping).
    pub fn speedup(&self) -> f64 {
        self.speedup
    }

    /// The wall instant virtual time `t` is due at.
    fn wall_for(&self, t: SimTime) -> Instant {
        let secs = t.as_micros() as f64 / (self.speedup * 1e6);
        self.epoch + Duration::from_secs_f64(secs)
    }

    /// Time still to wait until virtual `t` is due, `None` when the wall
    /// is already at or past it.
    pub fn wall_until(&self, t: SimTime) -> Option<Duration> {
        self.wall_for(t).checked_duration_since(Instant::now())
    }

    /// The virtual time the wall has reached — the live mode's "now" when
    /// stamping ad-hoc arrivals.
    pub fn now_virtual(&self) -> SimTime {
        let us = self.epoch.elapsed().as_secs_f64() * self.speedup * 1e6;
        SimTime::from_micros(us as u64)
    }
}

impl Clock for WallClock {
    fn pace(&mut self, next: SimTime) {
        if let Some(wait) = self.wall_until(next) {
            if wait > Duration::ZERO {
                std::thread::sleep(wait);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pace_is_monotone_and_fast_at_high_speedup() {
        let mut c = WallClock::new(1_000_000.0);
        let start = Instant::now();
        c.pace(SimTime::from_secs(5));
        c.pace(SimTime::from_secs(10));
        // 10 virtual seconds at 1e6x is 10 us of wall; allow generous slack.
        assert!(start.elapsed() < Duration::from_secs(2));
        assert!(c.now_virtual() >= SimTime::from_secs(5));
    }

    #[test]
    fn past_deadlines_do_not_block() {
        let c = WallClock::new(1e9);
        std::thread::sleep(Duration::from_millis(1));
        assert!(c.wall_until(SimTime::from_micros(1)).is_none());
    }
}
