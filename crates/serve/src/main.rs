//! `paldia-serve` — the wall-clock serving shell CLI (OPERATIONS.md).
//!
//! ```text
//! paldia-serve --smoke [--requests N] [--speed X] [--seed N] [--port P] [--report FILE]
//! paldia-serve --replay FILE [--speed X] [--port P] [--decisions FILE] [--report FILE]
//! paldia-serve --capture FILE [--seed N] [--secs N]
//! paldia-serve --listen [--port P] [--speed X] [--decisions FILE]
//! ```

use std::net::TcpListener;
use std::path::PathBuf;
use std::process::ExitCode;

use paldia_experiments::replaycap;
use paldia_obs::{JsonlSink, TraceSink};
use paldia_serve::{
    run_differential, run_smoke, serve_once, ServeOpts, ServeOutcome, SmokeOpts, SmokeOutcome,
};

const USAGE: &str = "\
paldia-serve: wall-clock serving shell over the deterministic scheduler core

USAGE:
  paldia-serve --smoke [--requests N] [--speed X] [--seed N] [--port P] [--report FILE]
      Capture the quick trace, replay it through the shell (loopback TCP)
      and the virtual-clock session, diff the decision streams both ways.
      Exit 0 only if the differential gate passes.

  paldia-serve --replay FILE [--speed X] [--port P] [--decisions FILE] [--report FILE]
      Same differential, on a trace file recorded by --capture or
      `repro --replay-capture`.

  paldia-serve --capture FILE [--seed N] [--secs N]
      Record the replay trace (GoogleNet over the scaled Azure slice) to
      FILE in the `# paldia-replay v1` line format.

  paldia-serve --listen [--port P] [--speed X] [--decisions FILE]
      Serve connections (one session each, sequentially) until killed.
      Speak the line protocol: `hello live <secs> <models>` then
      `inv <model>` / `end`. With --decisions, each session's decision
      stream is written as JSONL (plus a .stamps.jsonl wall sidecar).

DEFAULTS: --requests 200, --speed 20 (1.0 for --listen), --seed 42,
          --port 0 (ephemeral; 7979 for --listen), --secs 120
";

struct Cli {
    args: Vec<String>,
}

impl Cli {
    fn flag(&self, name: &str) -> bool {
        self.args.iter().any(|a| a == name)
    }
    fn value(&self, name: &str) -> Option<&str> {
        self.args
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.args.get(i + 1))
            .map(|s| s.as_str())
    }
    fn parsed<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.value(name) {
            None => Ok(default),
            Some(raw) => raw
                .parse()
                .map_err(|_| format!("bad value for {name}: `{raw}`")),
        }
    }
}

fn main() -> ExitCode {
    let cli = Cli {
        args: std::env::args().skip(1).collect(),
    };
    if cli.flag("--help") || cli.flag("-h") || cli.args.is_empty() {
        print!("{USAGE}");
        return ExitCode::SUCCESS;
    }
    let run = || -> Result<bool, String> {
        if cli.flag("--smoke") {
            return cmd_smoke(&cli);
        }
        if cli.value("--replay").is_some() {
            return cmd_replay(&cli);
        }
        if cli.value("--capture").is_some() {
            return cmd_capture(&cli);
        }
        if cli.flag("--listen") {
            return cmd_listen(&cli);
        }
        Err(format!("no command in {:?}; try --help", cli.args))
    };
    match run() {
        Ok(true) => ExitCode::SUCCESS,
        Ok(false) => ExitCode::FAILURE,
        Err(e) => {
            eprintln!("paldia-serve: {e}");
            ExitCode::FAILURE
        }
    }
}

fn print_verdict(o: &SmokeOutcome) {
    println!(
        "shell:  {} completed, {} unserved, {} cold starts, {} transitions, ${:.4}, {:.1}ms wall",
        o.shell.result.completed.len(),
        o.shell.result.unserved,
        o.shell.result.cold_starts,
        o.shell.result.transitions,
        o.shell.result.total_cost(),
        o.shell.wall.as_secs_f64() * 1e3
    );
    println!(
        "sim:    {} completed, {} unserved, {} cold starts, {} transitions, ${:.4}",
        o.sim_result.completed.len(),
        o.sim_result.unserved,
        o.sim_result.cold_starts,
        o.sim_result.transitions,
        o.sim_result.total_cost()
    );
    println!(
        "diff:   {} aligned, {} divergent forward, {} divergent backward, streams identical: {}",
        o.forward.aligned,
        o.forward.total_divergent,
        o.backward.total_divergent,
        o.events_identical
    );
    if let Some(d) = o.forward.first() {
        println!("first divergence: {d:?}");
    }
    println!("verdict: {}", if o.pass() { "PASS" } else { "FAIL" });
}

fn write_decisions(path: &str, outcome: &ServeOutcome) -> Result<(), String> {
    let mut sink = JsonlSink::create(path).map_err(|e| format!("creating {path}: {e}"))?;
    for e in &outcome.events {
        sink.record(e.clone());
    }
    let n = sink.finish().map_err(|e| format!("writing {path}: {e}"))?;
    let stamps = PathBuf::from(format!("{path}.stamps.jsonl"));
    paldia_serve::sink::write_stamps_jsonl(&stamps, &outcome.stamps)
        .map_err(|e| format!("writing {}: {e}", stamps.display()))?;
    println!("decisions: {n} events -> {path} (+ {})", stamps.display());
    Ok(())
}

fn cmd_smoke(cli: &Cli) -> Result<bool, String> {
    let opts = SmokeOpts {
        requests: cli.parsed("--requests", 200usize)?,
        speed: cli.parsed("--speed", 20.0f64)?,
        seed: cli.parsed("--seed", 42u64)?,
        port: cli.parsed("--port", 0u16)?,
        report: cli.value("--report").map(PathBuf::from),
    };
    let outcome = run_smoke(&opts)?;
    print_verdict(&outcome);
    if let Some(p) = &opts.report {
        println!("report: {}", p.display());
    }
    Ok(outcome.pass())
}

fn cmd_replay(cli: &Cli) -> Result<bool, String> {
    let path = cli.value("--replay").expect("checked by caller");
    let trace = replaycap::read_replay_trace(std::path::Path::new(path))?;
    println!(
        "replaying {}: {} arrivals over {:.1}s (virtual), seed {}",
        path,
        trace.arrivals.len(),
        trace.duration.as_secs_f64(),
        trace.seed
    );
    let speed = cli.parsed("--speed", 20.0f64)?;
    let port = cli.parsed("--port", 0u16)?;
    let outcome = run_differential(&trace, speed, port)?;
    print_verdict(&outcome);
    if let Some(p) = cli.value("--decisions") {
        write_decisions(p, &outcome.shell)?;
    }
    if let Some(p) = cli.value("--report") {
        let opts = SmokeOpts {
            requests: trace.arrivals.len(),
            speed,
            seed: trace.seed,
            port,
            report: None,
        };
        paldia_serve::report::write_report(std::path::Path::new(p), &opts, &outcome)?;
        println!("report: {p}");
    }
    Ok(outcome.pass())
}

fn cmd_capture(cli: &Cli) -> Result<bool, String> {
    let path = cli.value("--capture").expect("checked by caller");
    let seed = cli.parsed("--seed", 42u64)?;
    let secs = cli.parsed("--secs", 120u64)?;
    let trace = replaycap::capture_replay_trace(paldia_workloads::MlModel::GoogleNet, seed, secs);
    let n = replaycap::write_replay_trace(std::path::Path::new(path), &trace)?;
    println!(
        "captured {n} arrivals over {:.1}s (virtual) -> {path}",
        trace.duration.as_secs_f64()
    );
    Ok(true)
}

fn cmd_listen(cli: &Cli) -> Result<bool, String> {
    let port = cli.parsed("--port", 7979u16)?;
    let speed = cli.parsed("--speed", 1.0f64)?;
    let opts = ServeOpts { speed };
    let listener = TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| format!("binding 127.0.0.1:{port}: {e}"))?;
    println!(
        "listening on {} at {speed}x (one session per connection; ctrl-c to stop)",
        listener.local_addr().map_err(|e| e.to_string())?
    );
    loop {
        match serve_once(&listener, &opts) {
            Ok(outcome) => {
                println!(
                    "session: {} completed, {} unserved, {} decision events, {:.1}ms wall",
                    outcome.result.completed.len(),
                    outcome.result.unserved,
                    outcome.events.len(),
                    outcome.wall.as_secs_f64() * 1e3
                );
                for e in &outcome.protocol_errors {
                    eprintln!("protocol: {e}");
                }
                if let Some(p) = cli.value("--decisions") {
                    write_decisions(p, &outcome)?;
                }
            }
            Err(e) => eprintln!("session failed: {e}"),
        }
    }
}
