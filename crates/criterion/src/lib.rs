//! Vendored, dependency-free stand-in for the `criterion` crate.
//!
//! The workspace builds in an offline container where the crates.io mirror
//! is unreachable, so the real `criterion` cannot be fetched. This shim is a
//! functional micro-benchmark harness, not statistics theatre: it warms up,
//! runs timed samples until the measurement budget or sample count is
//! exhausted, and prints mean / min per-iteration wall-clock. It covers the
//! API surface the `paldia-bench` targets use: `criterion_group!` /
//! `criterion_main!`, `Criterion::benchmark_group`, group configuration
//! (`sample_size`, `measurement_time`, `warm_up_time`), `bench_function`,
//! `Bencher::iter` / `iter_batched`, and `BatchSize`.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Batch sizing hint. The shim times one routine invocation per sample
/// regardless, so the variants only exist for signature compatibility.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

#[derive(Debug, Clone, Copy)]
struct SampleConfig {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for SampleConfig {
    fn default() -> Self {
        SampleConfig {
            sample_size: 10,
            measurement_time: Duration::from_secs(3),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

/// Top-level benchmark context handed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {
    config: SampleConfig,
}

impl Criterion {
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config,
            _criterion: self,
        }
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F)
    where
        F: FnMut(&mut Bencher),
    {
        run_benchmark(&id.into(), self.config, f);
    }
}

pub struct BenchmarkGroup<'c> {
    name: String,
    config: SampleConfig,
    _criterion: &'c mut Criterion,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.config.measurement_time = t;
        self
    }

    pub fn warm_up_time(&mut self, t: Duration) -> &mut Self {
        self.config.warm_up_time = t;
        self
    }

    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_benchmark(&full, self.config, f);
        self
    }

    pub fn finish(self) {}
}

/// Measurement driver passed to each benchmark closure.
pub struct Bencher {
    config: SampleConfig,
    samples: Vec<Duration>,
}

impl Bencher {
    /// Time `f`, one invocation per sample, after a warm-up period.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        let warm_until = Instant::now() + self.config.warm_up_time;
        loop {
            black_box(f());
            if Instant::now() >= warm_until {
                break;
            }
        }
        let budget = Instant::now() + self.config.measurement_time;
        for _ in 0..self.config.sample_size {
            let start = Instant::now();
            black_box(f());
            self.samples.push(start.elapsed());
            if Instant::now() >= budget {
                break;
            }
        }
    }

    /// Time `routine` on fresh inputs from `setup`; setup time is excluded.
    pub fn iter_batched<I, O>(
        &mut self,
        mut setup: impl FnMut() -> I,
        mut routine: impl FnMut(I) -> O,
        _size: BatchSize,
    ) {
        let warm_until = Instant::now() + self.config.warm_up_time;
        loop {
            black_box(routine(setup()));
            if Instant::now() >= warm_until {
                break;
            }
        }
        let budget = Instant::now() + self.config.measurement_time;
        for _ in 0..self.config.sample_size {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.samples.push(start.elapsed());
            if Instant::now() >= budget {
                break;
            }
        }
    }
}

fn run_benchmark<F>(id: &str, config: SampleConfig, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher {
        config,
        samples: Vec::new(),
    };
    f(&mut bencher);
    if bencher.samples.is_empty() {
        println!("{id:<48} (no samples recorded)");
        return;
    }
    let total: Duration = bencher.samples.iter().sum();
    let mean = total / bencher.samples.len() as u32;
    let min = bencher.samples.iter().min().copied().unwrap_or_default();
    println!(
        "{id:<48} mean {:>12} min {:>12} ({} samples)",
        format_duration(mean),
        format_duration(min),
        bencher.samples.len()
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", d.as_secs_f64())
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} us", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod shim_tests {
    use super::*;

    #[test]
    fn bench_function_records_samples() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3);
        g.measurement_time(Duration::from_millis(50));
        g.warm_up_time(Duration::from_millis(1));
        let mut ran = 0u32;
        g.bench_function("counts", |b| {
            b.iter(|| {
                ran += 1;
            })
        });
        g.finish();
        assert!(ran > 0);
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut c = Criterion::default();
        c.config.sample_size = 2;
        c.config.measurement_time = Duration::from_millis(20);
        c.config.warm_up_time = Duration::from_millis(1);
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
