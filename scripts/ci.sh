#!/usr/bin/env bash
# The full CI gate, runnable locally:
#
#   scripts/ci.sh            # lints + formatting + tier-1 suite
#
# Stages, in fail-fast order (cheapest first):
#   1. cargo fmt --check      — the tree is formatted; run `cargo fmt` to fix
#   2. cargo clippy           — zero warnings across every target (-D warnings)
#   3. paldia-lint            — token rules (d1/d2/d3/r1/r2) plus the
#      boundary-graph passes: crate classification coverage, b1 dependency
#      edges, b2 re-export leaks, call-graph reachability narratives, and
#      the stale-hatch audit. Emits target/lint-report.json for CI tooling.
#   4. cargo doc --no-deps    — rustdoc builds warning-free (missing docs, bad links)
#   5. cargo doc (core/obs/serve) — the documented-API crates additionally
#      build under -D missing_docs: every public item has rustdoc
#   6. cargo build --release  — the tier-1 build
#   7. cargo test -q          — root integration tests (tier-1 gate)
#   8. determinism replay + shard invariance again under PALDIA_SHARDS=3
#      — the partitioned fleet path must replay bit-identically too
#   9. repro --diff-golden    — the current build must reproduce both committed
#      golden decision logs (quick + LLM) bit for bit (re-bless intentional
#      policy changes with scripts/rebless.sh)
#  10. repro --llm-smoke      — the iteration-level LLM storm scenario at
#      shards 1 and 3, decision streams diffed empty in both directions
#      (target/llm-report.json)
#  11. serve-smoke            — the wall-clock serving shell replays the quick
#      capture over loopback TCP and must diff divergence-free against the
#      virtual-clock session in both directions (target/serve-report.json)
#  12. cargo test --workspace — every crate's unit/property/integration tests
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> paldia-lint --deny-all (token + boundary passes)"
mkdir -p target
cargo run -q -p paldia-lint -- --deny-all --json-artifact target/lint-report.json

echo "==> cargo doc --no-deps --workspace (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc -q --no-deps --workspace

echo "==> cargo doc -p core/obs/serve (RUSTDOCFLAGS=-D warnings -D missing_docs)"
RUSTDOCFLAGS="-D warnings -D missing_docs" \
    cargo doc -q --no-deps -p paldia-core -p paldia-obs -p paldia-serve

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> PALDIA_SHARDS=3 cargo test -q --test determinism_replay --test shard_invariance"
PALDIA_SHARDS=3 cargo test -q --test determinism_replay --test shard_invariance

echo "==> repro --diff-golden (decision-log regression gates, quick + llm)"
cargo run --release -q -p paldia-experiments --bin repro -- --diff-golden

echo "==> repro --llm-smoke (iteration-level shard-invariance gate)"
# Runs the quick LLM storm scenario at shards 1 and 3 and requires the
# decision streams to diff empty in both directions. Publishes
# target/llm-report.json.
cargo run --release -q -p paldia-experiments --bin repro -- --llm-smoke \
    --report target/llm-report.json

echo "==> serve-smoke (wall-clock shell vs DES differential, DESIGN.md §14)"
# Replays 200 requests of the quick capture through paldia-serve on a
# loopback ephemeral port at 20x, and through the virtual-clock session;
# exits non-zero unless the decision streams diff clean in both
# directions. Publishes target/serve-report.json.
cargo run --release -q -p paldia-serve -- --smoke \
    --requests 200 --speed 20 --report target/serve-report.json

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> ci green"
