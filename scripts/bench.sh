#!/usr/bin/env bash
# Tier-2 perf check: regenerate the quick reproduction with timings and
# append the run to the tracked baseline file BENCH_repro.json.
#
#   scripts/bench.sh                 # quick repro + timings entry
#   scripts/bench.sh --label mylabel # custom entry label
#   scripts/bench.sh --jobs 1        # force serial (determinism reference)
#
# Extra arguments are passed through to the repro binary.
#
# The run's stdout is tee'd to target/bench-run.log; `set -o pipefail`
# makes the tee pipe propagate repro's exit code instead of tee's. If the
# run fails — or records an entry without a resolvable `commit` field,
# which would make the before/after trajectory unattributable —
# BENCH_repro.json is restored from its pre-run snapshot so a broken run
# can never corrupt the tracked baseline.
set -euo pipefail
cd "$(dirname "$0")/.."

BENCH=BENCH_repro.json
SNAPSHOT=target/bench-repro.snapshot.json
LOG=target/bench-run.log
mkdir -p target

cargo build --release -p paldia-experiments --bin repro

# Snapshot the baseline so a failed or unattributable run restores it.
had_bench=0
if [[ -f "$BENCH" ]]; then
    cp "$BENCH" "$SNAPSHOT"
    had_bench=1
fi

restore() {
    if [[ "$had_bench" == 1 ]]; then
        cp "$SNAPSHOT" "$BENCH"
    else
        rm -f "$BENCH"
    fi
}

# pipefail (set above) is what makes this pipeline fail the script when
# repro fails, not when tee does.
if ! cargo run --release -p paldia-experiments --bin repro -- --quick --timings "$@" \
        | tee "$LOG"; then
    echo "bench: repro failed; restoring $BENCH from snapshot" >&2
    restore
    exit 1
fi

# Guard: refuse to keep an entry whose commit field is missing or
# unresolved — such entries cannot be placed on the perf trajectory.
last_commit=$(grep -o '"commit": "[^"]*"' "$BENCH" | tail -1 | cut -d'"' -f4 || true)
if [[ -z "$last_commit" || "$last_commit" == "unknown" ]]; then
    echo "bench: newest entry has no usable commit field (got '${last_commit:-<none>}');" >&2
    echo "bench: restoring $BENCH from snapshot — run from a git checkout" >&2
    restore
    exit 1
fi

echo
echo "bench entries recorded in $BENCH (log: $LOG):"
grep -o '"label": "[^"]*"' "$BENCH" | tail -5 || true
