#!/usr/bin/env bash
# Tier-2 perf check: regenerate the quick reproduction with timings and
# append the run to the tracked baseline file BENCH_repro.json.
#
#   scripts/bench.sh                 # quick repro + timings entry
#   scripts/bench.sh --label mylabel # custom entry label
#   scripts/bench.sh --jobs 1        # force serial (determinism reference)
#
# Extra arguments are passed through to the repro binary.
set -euo pipefail
cd "$(dirname "$0")/.."

cargo build --release -p paldia-experiments --bin repro
cargo run --release -p paldia-experiments --bin repro -- --quick --timings "$@"

echo
echo "bench entries recorded in BENCH_repro.json:"
grep -o '"label": "[^"]*"' BENCH_repro.json | tail -5
