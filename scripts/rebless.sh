#!/usr/bin/env bash
# Re-bless the golden decision logs after an *intentional* scheduler policy
# or tunable change:
#
#   scripts/rebless.sh
#
# Regenerates tests/golden/decision_log_quick.jsonl (the golden scenario:
# seed 42, 90 s truncated Azure trace, GoogleNet, default tunables, serial
# engine — see experiments::diffcap) and decision_log_llm.jsonl (the
# iteration-level LLM storm scenario — see experiments::llm_iter) from the
# current build, then re-runs the gate to confirm both new logs are
# reproducible. Review the resulting file diffs like code: every changed
# line is a scheduling decision your change altered, and
# `repro --diff <old> <new>` narrates the first one.
#
# Do NOT re-bless to silence a failure you cannot explain — an unexplained
# golden-gate failure is the differ catching a real behavioural regression.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> repro --bless-golden"
cargo run --release -q -p paldia-experiments --bin repro -- --bless-golden

echo "==> repro --diff-golden (verifying the new log reproduces)"
cargo run --release -q -p paldia-experiments --bin repro -- --diff-golden

echo "==> re-blessed; review the diffs under tests/golden/ like code"
