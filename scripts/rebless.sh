#!/usr/bin/env bash
# Re-bless the golden decision log after an *intentional* scheduler policy
# or tunable change:
#
#   scripts/rebless.sh
#
# Regenerates tests/golden/decision_log_quick.jsonl from the current build
# (the golden scenario: seed 42, 90 s truncated Azure trace, GoogleNet,
# default tunables, serial engine — see experiments::diffcap), then re-runs
# the gate to confirm the new log is reproducible. Review the resulting
# file diff like code: every changed line is a scheduling decision your
# change altered, and `repro --diff <old> <new>` narrates the first one.
#
# Do NOT re-bless to silence a failure you cannot explain — an unexplained
# golden-gate failure is the differ catching a real behavioural regression.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> repro --bless-golden"
cargo run --release -q -p paldia-experiments --bin repro -- --bless-golden

echo "==> repro --diff-golden (verifying the new log reproduces)"
cargo run --release -q -p paldia-experiments --bin repro -- --diff-golden

echo "==> re-blessed; review the diff of tests/golden/decision_log_quick.jsonl"
