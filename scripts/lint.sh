#!/usr/bin/env bash
# Convenience wrapper for the determinism & robustness lint:
#
#   scripts/lint.sh                  # human-readable diagnostics
#   scripts/lint.sh --format json    # machine-readable output
#
# Runs the token rules (d1/d2/d3/r1/r2) and the boundary-graph passes
# (crate classification, b1/b2 edges, reachability narratives, stale-hatch
# audit); the summary line reports the total lint wall time in ms.
# Exits nonzero if any violation is found. Rule table and allowlist
# policy: crates/lint/README.md.
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run -q -p paldia-lint -- --deny-all "$@"
