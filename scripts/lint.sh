#!/usr/bin/env bash
# Convenience wrapper for the determinism & robustness lint:
#
#   scripts/lint.sh                  # human-readable diagnostics
#   scripts/lint.sh --format json    # machine-readable output
#
# Exits nonzero if any d1/d2/d3/r1/r2 violation is found. Rule table and
# allowlist policy: crates/lint/README.md.
set -euo pipefail
cd "$(dirname "$0")/.."
exec cargo run -q -p paldia-lint -- --deny-all "$@"
