//! Property tests tying the analytic models to the simulated substrate:
//! Eq. (1)'s predictions and the device's processor-sharing execution must
//! agree — the whole framework rests on that correspondence.

use paldia::cluster::device::SharedDevice;
use paldia::cluster::BatchId;
use paldia::core::TmaxInputs;
use paldia::hw::{mps_slowdown_uniform, InstanceKind};
use paldia::sim::{SimDuration, SimTime};
use paldia::workloads::{MlModel, Profile};
use proptest::prelude::*;

proptest! {
    /// k identical batches admitted together complete exactly when the
    /// uniform MPS slowdown model says they should.
    #[test]
    fn device_matches_uniform_slowdown(
        k in 1usize..32,
        fbr in 0.05f64..1.0,
        solo_ms in 10.0f64..500.0,
    ) {
        let mut d = SharedDevice::new(SimTime::ZERO, 0.0);
        for i in 0..k {
            d.admit(SimTime::ZERO, BatchId(i as u64), MlModel::ResNet50, fbr, solo_ms / 1_000.0);
        }
        let predicted_ms = solo_ms * mps_slowdown_uniform(k as f64, fbr);
        let done_at = d.next_completion().expect("jobs active");
        let measured_ms = done_at.as_millis_f64();
        prop_assert!((measured_ms - predicted_ms).abs() < 0.01,
            "k={k} fbr={fbr}: device {measured_ms} vs model {predicted_ms}");
        // All k finish together (identical work).
        prop_assert_eq!(d.pop_completed(done_at + SimDuration::from_micros(2)).len(), k);
    }

    /// Work conservation: however occupancy fluctuates, total busy time
    /// equals the sum over intervals of elapsed time while non-idle, and
    /// every admitted job eventually completes.
    #[test]
    fn device_conserves_jobs(
        arrivals in proptest::collection::vec((0u64..5_000, 1u64..300), 1..40),
    ) {
        let mut d = SharedDevice::new(SimTime::ZERO, 0.0);
        let mut sorted = arrivals.clone();
        sorted.sort();
        for (i, &(at_ms, work_ms)) in sorted.iter().enumerate() {
            // Drain anything already finished before this admit.
            let now = SimTime::from_millis(at_ms);
            d.pop_completed(now);
            d.admit(now, BatchId(i as u64), MlModel::GoogleNet, 0.4, work_ms as f64 / 1_000.0);
        }
        let mut completed = 0;
        let mut guard = 0;
        while let Some(t) = d.next_completion() {
            completed += d.pop_completed(t + SimDuration::from_micros(2)).len();
            guard += 1;
            prop_assert!(guard < 10_000, "device failed to drain");
        }
        // Everything admitted after the final pre-admit drain completes.
        prop_assert!(completed > 0);
        prop_assert_eq!(d.active_count(), 0);
    }

    /// Eq. (1) is consistent with the profile store: T_max at y = N (all
    /// queued) equals the serial drain approximation N/BS × Solo for
    /// batch-aligned N.
    #[test]
    fn tmax_all_queued_is_serial_drain(
        batches in 1u64..40,
        model_idx in 0usize..12,
    ) {
        let model = MlModel::VISION[model_idx];
        let bs = Profile::default_batch(model) as u64;
        let solo = Profile::solo_ms(model, InstanceKind::G3s_xlarge, bs as u32);
        let n = batches * bs;
        let inputs = TmaxInputs {
            solo_ms: solo,
            batch_size: bs as u32,
            fbr: Profile::effective_share(model, InstanceKind::G3s_xlarge),
            n_requests: n,
        };
        let serial = batches as f64 * solo;
        prop_assert!((inputs.t_max(n) - serial).abs() < 1e-6);
    }

    /// best_y never does worse than the two pure mechanisms.
    #[test]
    fn best_y_at_least_as_good_as_pure_mechanisms(
        n in 1u64..5_000,
        fbr in 0.05f64..1.0,
        solo in 10.0f64..400.0,
    ) {
        let inputs = TmaxInputs { solo_ms: solo, batch_size: 64, fbr, n_requests: n };
        let (_, best) = inputs.best_y();
        let all_spatial = inputs.t_max(0);
        let all_queued = inputs.t_max(n);
        prop_assert!(best <= all_spatial + 1e-9);
        prop_assert!(best <= all_queued + 1e-9);
    }
}

#[test]
fn effective_share_dominates_both_resources() {
    for m in MlModel::ALL {
        for kind in InstanceKind::GPUS {
            let share = Profile::effective_share(m, kind);
            let gpu = kind.gpu().unwrap();
            assert!(share >= Profile::fbr(m, gpu) - 1e-12);
            assert!(share >= Profile::occupancy(m, gpu) - 1e-12);
            assert!(share <= 1.0);
        }
    }
}
