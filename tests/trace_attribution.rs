//! Trace-driven attribution cross-validated against the metrics layer:
//! `paldia_obs::TraceAttribution` (computed purely from the span stream)
//! and `paldia_metrics::TailBreakdown` (computed from the harness's
//! `CompletedRequest` records) are two independent derivations of the
//! Fig. 4 breakdown — on the same run they must agree per component within
//! a fixed tolerance, for the single-tenant harness AND the fleet.
//!
//! Also here: the `--triage` golden-shape test on a seeded cold-start
//! storm, the span-coverage regression (every request phase has an
//! emitting span — transition windows and prewarm cold starts included),
//! and the JSONL-vs-ring sink equivalence on a real capture.

use paldia_cluster::{run_fleet_traced, FailoverPolicyKind, FaultPlan, FleetDeployment, SimConfig};
use paldia_core::PaldiaScheduler;
use paldia_experiments::scenarios::azure_workload_truncated;
use paldia_experiments::tracecap;
use paldia_hw::{Catalog, InstanceKind};
use paldia_metrics::{tail_cohort, TailBreakdown};
use paldia_obs::{
    events_from_jsonl, render_triage, Component, JsonlSink, RingSink, TraceAttribution, TraceEvent,
    TraceEventKind, TriageReport,
};
use paldia_sim::SimTime;
use paldia_workloads::MlModel;

/// Fixed agreement tolerance between the two derivations: per-request solo
/// rounding is at most 0.0005 ms, so component means over any cohort stay
/// within 0.05 ms absolute (plus a 0.1% relative term for the large
/// totals).
fn close(a: f64, b: f64) -> bool {
    (a - b).abs() <= 0.05_f64.max(0.001 * a.abs().max(b.abs()))
}

fn assert_breakdowns_agree(
    label: &str,
    trace: &paldia_obs::AttributedBreakdown,
    metrics: &TailBreakdown,
) {
    assert!(
        close(trace.total_ms, metrics.total_ms),
        "{label}: total {} vs {}",
        trace.total_ms,
        metrics.total_ms
    );
    assert!(
        close(trace.combined_queueing_ms(), metrics.queueing_ms),
        "{label}: queueing {} vs {}",
        trace.combined_queueing_ms(),
        metrics.queueing_ms
    );
    assert!(
        close(trace.min_possible_ms, metrics.min_possible_ms),
        "{label}: min possible {} vs {}",
        trace.min_possible_ms,
        metrics.min_possible_ms
    );
    assert!(
        close(trace.interference_ms, metrics.interference_ms),
        "{label}: interference {} vs {}",
        trace.interference_ms,
        metrics.interference_ms
    );
}

#[test]
fn single_tenant_attribution_matches_metrics() {
    let (events, result) = tracecap::capture_primary_run(true, 1_000);
    let attribution = TraceAttribution::from_events(&events);

    // One-to-one with the harness's completed list: same requests, same
    // order, bit-identical latencies.
    assert_eq!(attribution.requests.len(), result.completed.len());
    for (a, c) in attribution.requests.iter().zip(&result.completed) {
        assert_eq!(a.request, c.id.0, "completion order diverged");
        assert_eq!(
            a.latency_ms().to_bits(),
            c.latency_ms().to_bits(),
            "latency of request {} diverged",
            c.id.0
        );
    }

    // The Fig. 4 cross-check: both derivations agree per component at the
    // median tail and the paper's P99.
    for p in [90.0, 99.0] {
        let metrics = TailBreakdown::at(&result.completed, p).expect("non-empty run");
        let trace = attribution.breakdown(None, p).expect("non-empty run");
        assert_eq!(trace.requests, tail_cohort(&result.completed, p).len());
        assert_breakdowns_agree(&format!("single-tenant p{p}"), &trace, &metrics);
    }
}

fn fleet_deployments(seed: u64) -> Vec<FleetDeployment> {
    [(MlModel::GoogleNet, 0u64), (MlModel::SeNet18, 1u64)]
        .iter()
        .map(|&(model, off)| FleetDeployment {
            name: format!("{model}"),
            workloads: vec![azure_workload_truncated(model, seed + off, 90)],
            scheduler: Box::new(PaldiaScheduler::new()),
            initial_hw: InstanceKind::C6i_2xlarge,
        })
        .collect()
}

#[test]
fn fleet_attribution_matches_metrics_per_tenant() {
    let seed = 1_000u64;
    let cfg = SimConfig::with_seed(seed);
    let mut sink = RingSink::new(1_000_000);
    let results = run_fleet_traced(
        fleet_deployments(seed),
        Catalog::table_ii(),
        1,
        &cfg,
        &mut sink,
    );
    let events = sink.into_events();
    let attribution = TraceAttribution::from_events(&events);
    assert_eq!(attribution.scopes(), vec![1, 2], "one scope per tenant");

    for (i, result) in results.iter().enumerate() {
        let scope = 1 + i as u32;
        let per_tenant = attribution.for_scope(Some(scope));
        assert_eq!(per_tenant.len(), result.completed.len());
        for (a, c) in per_tenant.iter().zip(&result.completed) {
            assert_eq!(
                a.request, c.id.0,
                "tenant {scope}: completion order diverged"
            );
            assert_eq!(a.latency_ms().to_bits(), c.latency_ms().to_bits());
        }
        let metrics = TailBreakdown::at(&result.completed, 99.0).expect("non-empty tenant");
        let trace = attribution
            .breakdown(Some(scope), 99.0)
            .expect("non-empty tenant");
        assert_breakdowns_agree(&format!("tenant {scope} p99"), &trace, &metrics);

        // The per-tenant rollup is well-formed.
        let rollup = attribution.rollup(Some(scope)).expect("non-empty tenant");
        assert_eq!(rollup.requests, result.completed.len());
        assert!(rollup.p50.total_ms <= rollup.p99.total_ms + 1e-9);
    }
}

/// A quick primary capture with a cold-start storm injected mid-trace:
/// every warm idle container dies every five seconds through the back half
/// of the trace, so each recovery wave pays the full cold start again.
fn storm_capture(seed: u64) -> (Vec<TraceEvent>, paldia_cluster::RunResult) {
    let mut plan = FaultPlan::new();
    for at in (60..tracecap::QUICK_CAPTURE_SECS).step_by(5) {
        plan = plan.cold_start_storm(SimTime::from_secs(at));
    }
    let mut sink = RingSink::new(tracecap::CAPTURE_CAPACITY);
    let result = tracecap::capture_primary_run_with(
        true,
        seed,
        Some((plan, FailoverPolicyKind::CheapestMorePerformant)),
        &mut sink,
    );
    (sink.into_events(), result)
}

#[test]
fn triage_surfaces_a_cold_start_cluster_under_a_storm() {
    let (events, result) = storm_capture(1_000);
    let attribution = TraceAttribution::from_events(&events);
    let report = TriageReport::build(&attribution, 200.0);

    assert_eq!(report.total, result.completed.len());
    assert!(
        report.misses > 0,
        "a cold-start storm must cause SLO misses"
    );
    // The storm must surface a cold-start-dominated cluster. (It need not
    // be the largest: the backlog a storm causes accrues mostly *before*
    // batch close, so a batching-dominated cluster legitimately coexists.)
    let cold = report
        .cluster(Component::ColdStart)
        .expect("storm must surface a cold-start-dominated cluster");
    assert!(
        cold.count >= 5,
        "expected a substantial cold-start cluster, got {:?}",
        report
            .clusters
            .iter()
            .map(|c| (c.component, c.count))
            .collect::<Vec<_>>()
    );
    assert!(cold.exemplar.cold_start_us > 0);
    assert!(cold.exemplar.latency_ms() > 200.0);

    // Golden shape of the rendered report: header, the cluster line, the
    // component split of the worst request, and its inlined lifecycle.
    let text = render_triage(&report, &events);
    for needle in [
        "SLO triage @ 200.0 ms",
        "cluster: cold start dominated",
        "worst: request",
        "arrived",
        "end-to-end latency",
    ] {
        assert!(
            text.contains(needle),
            "triage report missing '{needle}':\n{text}"
        );
    }
}

#[test]
fn every_request_phase_has_an_emitting_span() {
    // Clean capture: transitions must be explicit begin/end windows.
    let (events, result) = tracecap::capture_primary_run(true, 1_000);
    let committed_ends: Vec<&TraceEvent> = events
        .iter()
        .filter(|e| {
            matches!(
                e.kind,
                TraceEventKind::TransitionEnded {
                    committed: true,
                    ..
                }
            )
        })
        .collect();
    let switches = events
        .iter()
        .filter(|e| matches!(e.kind, TraceEventKind::HwSwitched { .. }))
        .count();
    assert_eq!(
        committed_ends.len(),
        switches,
        "every routing switch must close an explicit transition window"
    );
    assert_eq!(
        committed_ends.len() as u64,
        result.transitions,
        "trace and metrics disagree on the number of transitions"
    );
    for end in &committed_ends {
        let TraceEventKind::TransitionEnded { worker, .. } = end.kind else {
            unreachable!()
        };
        assert!(
            events.iter().any(|e| {
                (e.at, e.seq) < (end.at, end.seq)
                    && matches!(e.kind, TraceEventKind::TransitionBegan { worker: w, .. } if w == worker)
            }),
            "transition end on worker {worker} has no earlier begin"
        );
    }

    // Storm capture: every cold start that finishes must have begun —
    // including prewarmed containers (the path that used to be untraced).
    let (events, _) = storm_capture(1_000);
    let finished: Vec<(u32, u32, SimTime, u64)> = events
        .iter()
        .filter_map(|e| match e.kind {
            TraceEventKind::ColdStartFinished { worker, container } => {
                Some((worker, container, e.at, e.seq))
            }
            _ => None,
        })
        .collect();
    assert!(!finished.is_empty(), "storm run must cold-start containers");
    for (worker, container, at, seq) in finished {
        assert!(
            events.iter().any(|e| {
                (e.at, e.seq) < (at, seq)
                    && matches!(
                        e.kind,
                        TraceEventKind::ColdStartBegan { worker: w, container: c, .. }
                            if w == worker && c == container
                    )
            }),
            "cold start finish for worker {worker} container {container} has no earlier begin"
        );
    }
}

#[test]
fn jsonl_capture_is_equivalent_to_ring_capture() {
    // Same run, two sinks: the ring keeps events in memory, the JSONL sink
    // streams them through a writer. Reading the JSONL back must yield the
    // identical event stream — and therefore the identical attribution.
    let (ring_events, _) = tracecap::capture_primary_run(true, 1_000);
    let mut buf: Vec<u8> = Vec::new();
    {
        let mut sink = JsonlSink::new(&mut buf);
        let _ = tracecap::capture_primary_run_with(true, 1_000, None, &mut sink);
        let written = sink.finish().expect("in-memory writer cannot fail");
        assert_eq!(written, ring_events.len() as u64);
    }
    let text = String::from_utf8(buf).expect("jsonl is utf-8");
    let file_events = events_from_jsonl(&text).expect("capture must parse back");
    assert_eq!(ring_events, file_events, "jsonl capture diverged from ring");
    assert_eq!(
        TraceAttribution::from_events(&ring_events),
        TraceAttribution::from_events(&file_events)
    );
}
