//! Shard-count invariance of the partitioned fleet engine, as properties:
//! whatever the workload mix, seed, or fault schedule, the number of
//! partitions must never change a single bit of the output — and the
//! engine must complete even when shards outnumber the worker pool.

use paldia::cluster::{
    run_fleet_sharded, FailoverPolicyKind, FaultPlan, FleetDeployment, RunResult, SimConfig,
    WorkloadSpec,
};
use paldia::core::{pool, PaldiaScheduler};
use paldia::hw::Catalog;
use paldia::sim::{SimDuration, SimTime};
use paldia::traces::RateTrace;
use paldia::workloads::MlModel;
use proptest::prelude::*;

const ELASTIC: u32 = u32::MAX;
const MODELS: [MlModel; 4] = [
    MlModel::GoogleNet,
    MlModel::ResNet50,
    MlModel::SeNet18,
    MlModel::MobileNet,
];

/// A fleet of `n` tenants with per-tenant rates drawn by the property.
fn fleet(rates: &[f64], secs: u64) -> Vec<FleetDeployment> {
    let tiers = Catalog::table_ii().by_cost_ascending();
    rates
        .iter()
        .enumerate()
        .map(|(i, &rps)| FleetDeployment {
            name: format!("prop-{i}"),
            workloads: vec![WorkloadSpec::new(
                MODELS[i % MODELS.len()],
                RateTrace::constant(rps, SimDuration::from_secs(secs), SimDuration::from_secs(1)),
            )],
            scheduler: Box::new(PaldiaScheduler::new()),
            initial_hw: tiers[i % tiers.len()],
        })
        .collect()
}

fn fingerprint(results: &[RunResult]) -> String {
    format!("{results:?}")
}

fn run(rates: &[f64], secs: u64, cfg: &SimConfig, shards: u32) -> String {
    fingerprint(&run_fleet_sharded(
        fleet(rates, secs),
        Catalog::table_ii(),
        ELASTIC,
        cfg,
        shards,
    ))
}

proptest! {
    /// Clean elastic fleets: identical output at shard counts 1, 2, 3, 7.
    #[test]
    fn clean_fleet_is_invariant_across_shard_counts(
        seed in 0u64..1_000,
        rates in proptest::collection::vec(4.0f64..40.0, 2..5),
    ) {
        let cfg = SimConfig::with_seed(seed);
        let baseline = run(&rates, 15, &cfg, 1);
        for shards in [2u32, 3, 7] {
            prop_assert_eq!(&baseline, &run(&rates, 15, &cfg, shards),
                "clean fleet diverged at shards={}", shards);
        }
    }

    /// Iteration-level LLM runs: whatever the seed, and with or without
    /// the cold-start storm, the continuous-batching harness must emit
    /// the identical output at shards 1 and 3.
    #[test]
    fn llm_mode_is_invariant_across_shard_counts(
        seed in 0u64..500,
        storm_bit in 0u64..2,
    ) {
        use paldia::experiments::llm_iter::{run_llm, LlmRunOpts};
        use paldia::experiments::SchemeKind;
        let storm = storm_bit == 1;
        let base = LlmRunOpts {
            seed,
            secs: 45,
            scheme: SchemeKind::Paldia,
            iterative: true,
            storm,
            shards: 1,
        };
        let serial = run_llm(&base);
        let sharded = run_llm(&LlmRunOpts { shards: 3, ..base });
        prop_assert!(!serial.completed.is_empty(), "LLM run served nothing");
        prop_assert_eq!(
            format!("{serial:?}"),
            format!("{sharded:?}"),
            "LLM mode ({}) diverged at shards=3",
            if storm { "storm" } else { "clean" }
        );
    }

    /// Faulted fleets: a crash + degrade + storm schedule with
    /// property-chosen phases must not break the invariance either.
    #[test]
    fn faulted_fleet_is_invariant_across_shard_counts(
        seed in 0u64..1_000,
        crash_at in 3u64..14,
        degrade_at in 3u64..14,
        severity in 0.1f64..0.9,
        rates in proptest::collection::vec(4.0f64..40.0, 2..5),
    ) {
        let plan = FaultPlan::new()
            .crash(SimTime::from_secs(crash_at), SimDuration::from_secs(5))
            .degrade(SimTime::from_secs(degrade_at), SimDuration::from_secs(7), severity)
            .cold_start_storm(SimTime::from_secs(crash_at + 4));
        let cfg = SimConfig::with_seed(seed)
            .with_faults(plan, FailoverPolicyKind::CheapestMorePerformant);
        let baseline = run(&rates, 18, &cfg, 1);
        for shards in [2u32, 3, 7] {
            prop_assert_eq!(&baseline, &run(&rates, 18, &cfg, shards),
                "faulted fleet diverged at shards={}", shards);
        }
    }
}

/// Shards beyond the pool's worker cap must queue, not deadlock: with the
/// pool pinned to one job, a 7-shard faulted run still completes and
/// still matches the single-shard output. (`pool::set_jobs` is
/// process-global, but shard/job counts never affect results — only
/// wall-clock — so concurrent tests are unaffected.)
#[test]
fn pool_starvation_completes_and_matches() {
    pool::set_jobs(1);
    let plan = FaultPlan::new()
        .crash(SimTime::from_secs(10), SimDuration::from_secs(5))
        .straggler(SimTime::from_secs(18), SimDuration::from_secs(8), 2.5);
    let cfg = SimConfig::with_seed(77).with_faults(plan, FailoverPolicyKind::SameTierSpread);
    let rates = [30.0, 15.0, 40.0, 10.0, 25.0];
    let baseline = run(&rates, 20, &cfg, 1);
    let starved = run(&rates, 20, &cfg, 7);
    assert_eq!(baseline, starved, "7 shards on a 1-job pool diverged");
}
