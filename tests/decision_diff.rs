//! Golden-corpus tests for the decision-log differ on real simulations.
//!
//! Three layers, matching DESIGN.md §12:
//!
//! * the **golden gate** — the unmodified tree must reproduce the
//!   committed `tests/golden/decision_log_quick.jsonl` bit for bit (the
//!   same check `repro --diff-golden` runs in `scripts/ci.sh`);
//! * **pinned ablation pairs** — a tunable flip and a cold-start-storm
//!   window each diverge at a pinned first decision (tick, scope, class)
//!   with a pinned narrative, so renderer or alignment regressions are
//!   caught on real decision streams, not just synthetic ones;
//! * the **causality check** — decisions are the only scheduler→cluster
//!   channel, so a tunable flip's first decision divergence must occur at
//!   or before its first downstream metric delta.
//!
//! If a pin fails after an *intentional* scheduler change: re-bless the
//! golden log with `scripts/rebless.sh` and re-pin from the new narrative.

use paldia_cluster::{FailoverPolicyKind, FaultPlan, RunResult};
use paldia_experiments::diffcap::{
    self, apply_tunable, capture_decision_run, golden_opts, tunable_deltas,
};
use paldia_obs::{diff_decision_streams, render_diff, DivergenceClass, TraceEvent};
use paldia_sim::SimTime;

/// Sim-time (µs) of the first completed request whose timing, hardware,
/// or latency differs between two runs — infinity when the metrics are
/// identical.
fn first_metric_delta_us(a: &RunResult, b: &RunResult) -> Option<u64> {
    let n = a.completed.len().min(b.completed.len());
    for i in 0..n {
        let (x, y) = (&a.completed[i], &b.completed[i]);
        if x.completed != y.completed || x.solo_ms.to_bits() != y.solo_ms.to_bits() || x.hw != y.hw
        {
            return Some(x.completed.as_micros().min(y.completed.as_micros()));
        }
    }
    if a.completed.len() != b.completed.len() {
        return a
            .completed
            .get(n)
            .or_else(|| b.completed.get(n))
            .map(|c| c.completed.as_micros());
    }
    None
}

/// The unmodified tree reproduces the committed golden decision log —
/// the in-process version of the `repro --diff-golden` CI gate.
#[test]
fn golden_gate_reproduces_committed_log() {
    let report = diffcap::golden_gate().expect("golden log readable (scripts/rebless.sh)");
    assert!(
        report.is_empty(),
        "golden decision-log gate failed; first divergence:\n{}",
        render_diff(&report, "committed golden", "current build", &[])
    );
    assert!(report.aligned > 100, "golden log suspiciously short");
}

/// Same gate for the iteration-level LLM storm scenario: the committed
/// `tests/golden/decision_log_llm.jsonl` must reproduce bit for bit
/// (re-blessable via the same `scripts/rebless.sh` flow).
#[test]
fn llm_golden_gate_reproduces_committed_log() {
    let report = paldia_experiments::llm_iter::llm_golden_gate()
        .expect("llm golden log readable (scripts/rebless.sh)");
    assert!(
        report.is_empty(),
        "llm golden decision-log gate failed; first divergence:\n{}",
        render_diff(&report, "committed llm golden", "current build", &[])
    );
    assert!(report.aligned > 100, "llm golden log suspiciously short");
}

/// `diff(A, A)` is empty for a real seeded run, and the pinned
/// `selection.wait_limit` ablation diverges at exactly the pinned first
/// decision, with the pinned narrative, at or before its first metric
/// delta.
#[test]
fn wait_limit_flip_diverges_at_pinned_decision() {
    let base = golden_opts();
    let mut flipped = base.clone();
    apply_tunable(&mut flipped.config, "selection.wait_limit", "1").expect("known tunable");

    let (events_a, result_a) = capture_decision_run(&base);
    let (events_b, result_b) = capture_decision_run(&flipped);

    // Self-diff on a real capture is empty.
    let self_report = diff_decision_streams(&events_a, &events_a);
    assert!(self_report.is_empty(), "self-diff of a real run not empty");

    let report = diff_decision_streams(&events_a, &events_b);
    assert!(!report.is_empty(), "wait_limit flip produced no divergence");
    assert_eq!(report.aligned, 179, "golden scenario decision count moved");
    assert_eq!(report.only_a + report.only_b, 0, "streams lost alignment");

    // Pinned first divergence: hysteresis relaxed from 3 ticks to 1 lets
    // the upgrade fire at tick 127 (t = 64 s) instead of being held.
    let first = report.first().expect("non-empty report");
    assert_eq!(first.tick, 127);
    assert_eq!(first.scope, 0);
    assert_eq!(first.at, SimTime::from_micros(64_000_000));
    assert_eq!(first.class, DivergenceClass::ChosenHwFlip);

    // Pinned narrative: names the tick, the flip, and the delta.
    let deltas = tunable_deltas(&base.config, &flipped.config);
    let narrative = render_diff(&report, "default", "selection.wait_limit=1", &deltas);
    assert!(
        narrative.contains(
            "first divergent decision: tick #127 (t 64000.000 ms, scope 0) — chosen-hw-flip"
        ),
        "narrative lost its pinned first-divergence line:\n{narrative}"
    );
    assert!(narrative.contains("A chose c6i.2xlarge, B chose c6i.4xlarge"));
    assert!(narrative.contains("selection.wait_limit: 3 (A) -> 1 (B)"));
    assert!(narrative.contains("candidate table (Eq. 1):"));

    // Causality: the decision stream is the only scheduler→cluster
    // channel, so the first decision divergence precedes (or coincides
    // with) the first completed-request delta.
    let delta_us = first_metric_delta_us(&result_a, &result_b)
        .expect("a chosen-hw flip must eventually move the metrics");
    assert!(
        first.at.as_micros() <= delta_us,
        "first decision divergence at {} µs but metrics moved earlier at {} µs",
        first.at.as_micros(),
        delta_us
    );
}

/// Storm-window variant: a cold-start storm 10 s into the golden scenario
/// (same tunables on both sides) shows up in the decision stream as
/// candidate-table drift — the purge inflates `t_max` on the serving node
/// at the pinned tick.
#[test]
fn cold_start_storm_diverges_as_candidate_drift() {
    let clean = golden_opts();
    let mut stormy = clean.clone();
    stormy.faults = Some((
        FaultPlan::new().cold_start_storm(SimTime::from_secs(10)),
        FailoverPolicyKind::CheapestMorePerformant,
    ));

    let (events_a, _) = capture_decision_run(&clean);
    let (events_b, _) = capture_decision_run(&stormy);
    let report = diff_decision_streams(&events_a, &events_b);
    assert!(!report.is_empty(), "storm left no trace in the decisions");
    assert_eq!(report.aligned, 179);
    assert_eq!(report.only_a + report.only_b, 0);

    let first = report.first().expect("non-empty report");
    assert_eq!(first.tick, 20, "first post-storm monitor tick");
    assert_eq!(first.scope, 0);
    assert_eq!(first.at, SimTime::from_micros(10_500_000));
    assert_eq!(first.class, DivergenceClass::CandidateDrift);
    assert!(
        first.detail.contains("c6i.2xlarge"),
        "drift should name the serving node: {}",
        first.detail
    );

    let narrative = render_diff(&report, "clean", "storm@10s", &[]);
    assert!(narrative.contains("candidate-table-drift"));
    assert!(narrative.contains("tick #20"));
}

/// A second, earlier-diverging flip (`ramp_headroom` 2.2 → 1) also
/// respects divergence-before-metrics, and its report mirrors cleanly
/// when the arguments swap — the real-run version of the property tests
/// in `crates/obs/tests/diff_props.rs`.
#[test]
fn headroom_flip_precedes_metrics_and_mirrors() {
    let base = golden_opts();
    let mut flipped = base.clone();
    apply_tunable(&mut flipped.config, "ramp_headroom", "1").expect("known tunable");

    let (events_a, result_a) = capture_decision_run(&base);
    let (events_b, result_b) = capture_decision_run(&flipped);
    let report = diff_decision_streams(&events_a, &events_b);

    let first = report.first().expect("headroom flip diverges");
    assert_eq!(first.tick, 11);
    assert_eq!(first.at, SimTime::from_micros(6_000_000));
    assert_eq!(first.class, DivergenceClass::ChosenHwFlip);

    let delta_us = first_metric_delta_us(&result_a, &result_b)
        .expect("a chosen-hw flip must eventually move the metrics");
    assert!(first.at.as_micros() <= delta_us);

    // Mirror: swapped arguments preserve alignment keys/classes and swap
    // payload sides.
    let mirrored = diff_decision_streams(&events_b, &events_a);
    assert_eq!(mirrored.total_divergent, report.total_divergent);
    assert_eq!(mirrored.aligned, report.aligned);
    let mfirst = mirrored.first().expect("mirrored report non-empty");
    assert_eq!(mfirst.tick, first.tick);
    assert_eq!(mfirst.class, first.class);
    assert_eq!(mfirst.a, first.b);
    assert_eq!(mfirst.b, first.a);
}

/// The committed golden log survives a JSONL round-trip: parsing it and
/// re-serializing yields the same decisions the differ aligns on (diff
/// against the in-process capture stays empty either way).
#[test]
fn golden_log_round_trip_keeps_diff_empty() {
    let committed: Vec<TraceEvent> =
        paldia_obs::read_jsonl_file(diffcap::golden_path()).expect("golden log readable");
    let reserialized: Vec<TraceEvent> = committed
        .iter()
        .map(|e| {
            let line = paldia_obs::event_to_jsonl(e);
            paldia_obs::event_from_jsonl(&line).expect("golden line round-trips")
        })
        .collect();
    let report = diff_decision_streams(&committed, &reserialized);
    assert!(report.is_empty(), "round-trip changed the decision stream");
    assert_eq!(report.aligned, committed.len());
}
