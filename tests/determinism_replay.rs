//! Replay determinism: two fresh in-process executions of the same grid
//! must be bit-identical.
//!
//! This is the dynamic counterpart to lint rule d1 (see
//! `crates/lint/README.md`). The static pass bans `HashMap`/`HashSet` in
//! sim-facing crates because their `RandomState` is seeded per *instance* —
//! a second run of the very same code in the same process gets different
//! bucket orders. Running each grid twice back-to-back therefore exercises
//! exactly the failure mode the lint guards against: any surviving
//! hash-order (or allocator/address-keyed) dependence shows up as a
//! fingerprint mismatch here even when a single run looks plausible.
//!
//! Faulted and clean grids are both covered, and everything lives in one
//! `#[test]` because the pool-jobs override is process-global while the
//! harness runs tests concurrently.

use paldia_cluster::{FailoverPolicyKind, FaultPlan, RunResult, SimConfig};
use paldia_core::pool;
use paldia_experiments::llm_iter::{capture_llm_run, LlmRunOpts};
use paldia_experiments::scenarios::azure_workload_truncated;
use paldia_experiments::{run_grid, tracecap, GridCell, RunOpts, SchemeKind};
use paldia_hw::Catalog;
use paldia_obs::{
    diff_decision_streams, event_to_jsonl, RingSink, ScopeRollup, TraceAttribution, TraceEvent,
    TraceEventKind,
};
use paldia_sim::{SimDuration, SimTime};
use paldia_workloads::MlModel;

/// Every bit of observable output: per-request timings and overheads plus
/// run-level aggregates, as raw u64 words.
fn fingerprint(grid: &[Vec<RunResult>]) -> Vec<u64> {
    let mut bits = Vec::new();
    for reps in grid {
        for r in reps {
            bits.push(r.completed.len() as u64);
            bits.push(r.unserved);
            bits.push(r.total_cost().to_bits());
            bits.push(r.slo_compliance(200.0).to_bits());
            for c in &r.completed {
                bits.push(c.queue_ms().to_bits());
                bits.push(c.interference_ms().to_bits());
                bits.push(c.solo_ms.to_bits());
            }
        }
    }
    bits
}

/// The primary roster over one model — the quick-repro figure shape.
fn roster_cells(seed: u64, cfg: SimConfig) -> Vec<GridCell> {
    let workloads = vec![azure_workload_truncated(MlModel::SeNet18, seed, 90)];
    SchemeKind::primary_roster()
        .iter()
        .map(|s| GridCell::new(s.clone(), workloads.clone(), cfg.clone()))
        .collect()
}

fn run_once(cells: Vec<GridCell>, opts: &RunOpts) -> Vec<u64> {
    let catalog = Catalog::table_ii();
    fingerprint(&run_grid(cells, &catalog, opts))
}

#[test]
fn replaying_a_grid_is_bit_identical() {
    pool::set_jobs(1);
    for seed in [42u64, 7_777] {
        let opts = RunOpts {
            reps: 2,
            seed_base: seed,
            ..RunOpts::quick()
        };

        let clean_cfg = SimConfig::default();
        let faulted_cfg = SimConfig::default().with_faults(
            FaultPlan::sampled_crashes(seed, SimTime::from_secs(90), 3, SimDuration::from_secs(10)),
            FailoverPolicyKind::CheapestMorePerformant,
        );
        for (label, cfg) in [("clean", clean_cfg), ("faulted", faulted_cfg)] {
            let first = run_once(roster_cells(seed, cfg.clone()), &opts);
            let second = run_once(roster_cells(seed, cfg.clone()), &opts);
            assert!(!first.is_empty(), "{label}/seed {seed}: empty fingerprint");
            assert_eq!(
                first, second,
                "{label}/seed {seed}: second in-process run diverged — \
                 hash-order or address-keyed nondeterminism survives"
            );
        }
    }
    pool::set_jobs(0);
}

/// The decision-event stream is part of the replay contract too — not
/// just the metrics it produces. Two in-process captures of the same
/// quick primary run, and a capture on the partitioned engine
/// (shards = 3), must emit bit-identical decision streams: same ticks,
/// same candidate tables, same flags, byte-for-byte in JSONL. The
/// decision differ must agree, reporting an empty `DiffReport` in both
/// directions for every pair. (`scripts/ci.sh` additionally reruns this
/// test under `PALDIA_SHARDS=3`, which moves the *default*-shard paths
/// onto the partitioned engine; the explicit shard counts here cover
/// both engines regardless of the environment.)
#[test]
fn decision_stream_replays_bit_identical_across_shards() {
    let seed = 1_000u64;
    let capture = |shards: u32| -> Vec<TraceEvent> {
        let mut sink = RingSink::new(tracecap::CAPTURE_CAPACITY);
        let _ = tracecap::capture_primary_run_sharded(true, seed, None, &mut sink, shards);
        sink.into_events()
    };
    // Decisions only, seq zeroed: the sharded merge re-assigns global
    // sequence numbers, which carry no decision content.
    let decision_lines = |events: &[TraceEvent]| -> Vec<String> {
        events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::Decision(_)))
            .map(|e| {
                let mut e = e.clone();
                e.seq = 0;
                event_to_jsonl(&e)
            })
            .collect()
    };
    let base = capture(1);
    let rerun = capture(1);
    let sharded = capture(3);
    assert!(
        !decision_lines(&base).is_empty(),
        "quick capture emitted no decisions"
    );
    assert_eq!(
        decision_lines(&base),
        decision_lines(&rerun),
        "second in-process run emitted a different decision stream"
    );
    assert_eq!(
        decision_lines(&base),
        decision_lines(&sharded),
        "partitioned engine (shards=3) emitted a different decision stream"
    );
    let pairs: [(&str, &[TraceEvent], &[TraceEvent]); 4] = [
        ("rerun vs base", &rerun, &base),
        ("base vs rerun", &base, &rerun),
        ("sharded vs base", &sharded, &base),
        ("base vs sharded", &base, &sharded),
    ];
    for (label, a, b) in pairs {
        let report = diff_decision_streams(a, b);
        assert!(
            report.is_empty(),
            "{label}: non-empty decision diff; first divergence: {:?}",
            report.first()
        );
        assert!(report.aligned > 0, "{label}: nothing aligned");
    }
}

/// The iteration-level LLM mode joins the replay contract: a clean and a
/// cold-start-storm scenario, each run at shards 1 (twice, in-process)
/// and shards 3, must agree on every bit of observable output — the
/// metric fingerprint, the attribution rollup, and the decision stream
/// byte-for-byte in JSONL (seq zeroed, as above, since the sharded merge
/// re-assigns global sequence numbers).
#[test]
fn llm_mode_replays_bit_identical_across_shards() {
    let seed = 1_000u64;
    let decision_lines = |events: &[TraceEvent]| -> Vec<String> {
        events
            .iter()
            .filter(|e| matches!(e.kind, TraceEventKind::Decision(_)))
            .map(|e| {
                let mut e = e.clone();
                e.seq = 0;
                event_to_jsonl(&e)
            })
            .collect()
    };
    for storm in [false, true] {
        let label = if storm { "storm" } else { "clean" };
        let capture = |shards: u32| {
            let (events, result) = capture_llm_run(&LlmRunOpts {
                seed,
                secs: 90,
                scheme: SchemeKind::Paldia,
                iterative: true,
                storm,
                shards,
            });
            let rollup = TraceAttribution::from_events(&events)
                .rollup(None)
                .map(|r| rollup_bits(&r))
                .unwrap_or_default();
            (
                fingerprint(&[vec![result]]),
                rollup,
                decision_lines(&events),
            )
        };
        let base = capture(1);
        let rerun = capture(1);
        let sharded = capture(3);
        assert!(!base.0.is_empty(), "{label}: empty metric fingerprint");
        assert!(!base.1.is_empty(), "{label}: empty attribution rollup");
        assert!(!base.2.is_empty(), "{label}: no decisions captured");
        assert_eq!(base, rerun, "{label}: second in-process LLM run diverged");
        assert_eq!(
            base, sharded,
            "{label}: partitioned engine (shards=3) diverged in LLM mode"
        );
    }
}

/// Every bit of an attribution rollup, as raw u64 words.
fn rollup_bits(rollup: &ScopeRollup) -> Vec<u64> {
    let mut bits = vec![rollup.requests as u64];
    for b in [&rollup.p50, &rollup.p99] {
        bits.push(b.requests as u64);
        for v in [
            b.total_ms,
            b.min_possible_ms,
            b.batching_ms,
            b.cold_start_ms,
            b.transition_ms,
            b.queueing_ms,
            b.interference_ms,
        ] {
            bits.push(v.to_bits());
        }
    }
    bits
}

/// The trace-driven attribution rollup is part of the replay contract too:
/// two in-process captures of the same run — clean and faulted — must
/// produce bit-identical per-component tail rollups. (The capture path
/// never touches the worker pool, so this can run concurrently with the
/// grid test above.)
#[test]
fn attribution_rollup_replays_bit_identical() {
    let seed = 1_000u64;
    let plans: [(&str, Option<FaultPlan>); 2] = [
        ("clean", None),
        (
            "faulted",
            Some(FaultPlan::sampled_crashes(
                seed,
                SimTime::from_secs(90),
                3,
                SimDuration::from_secs(10),
            )),
        ),
    ];
    for (label, plan) in plans {
        let capture = || {
            let faults = plan
                .clone()
                .map(|p| (p, FailoverPolicyKind::CheapestMorePerformant));
            let mut sink = RingSink::new(tracecap::CAPTURE_CAPACITY);
            let _ = tracecap::capture_primary_run_with(true, seed, faults, &mut sink);
            let attribution = TraceAttribution::from_events(&sink.into_events());
            attribution
                .rollup(None)
                .map(|r| rollup_bits(&r))
                .unwrap_or_default()
        };
        let first = capture();
        let second = capture();
        assert!(!first.is_empty(), "{label}: empty rollup fingerprint");
        assert_eq!(
            first, second,
            "{label}: attribution rollup diverged across in-process replays"
        );
    }
}
