//! Observability is observation-only: a traced run must be bit-identical
//! to the untraced run, the chrome-trace export must have the documented
//! shape, and the sinks must stay bounded.
//!
//! Static counterpart: `paldia-obs` is in the lint's sim-facing and
//! deterministic scopes (`crates/lint/README.md`), so the sink layer
//! cannot grow wall-clock reads or hash-order iteration.

use paldia_cluster::{
    run_fleet, run_fleet_traced, run_simulation, run_simulation_traced, FleetDeployment, RunResult,
    SimConfig,
};
use paldia_core::PaldiaScheduler;
use paldia_experiments::scenarios::azure_workload_truncated;
use paldia_hw::{Catalog, InstanceKind};
use paldia_obs::{
    chrome_trace_json, completed_request_ids, explain_request, RingSink, TraceEvent, TraceEventKind,
};
use paldia_workloads::MlModel;

/// Every bit of observable output of one run, as raw u64 words (the
/// `determinism_replay` fingerprint, for a single result).
fn fingerprint(r: &RunResult) -> Vec<u64> {
    let mut bits = vec![
        r.completed.len() as u64,
        r.unserved,
        r.total_cost().to_bits(),
        r.slo_compliance(200.0).to_bits(),
        r.transitions,
    ];
    for c in &r.completed {
        bits.push(c.queue_ms().to_bits());
        bits.push(c.interference_ms().to_bits());
        bits.push(c.solo_ms.to_bits());
    }
    bits
}

fn capture_single(seed: u64, traced: bool) -> (Vec<TraceEvent>, RunResult) {
    let workloads = vec![azure_workload_truncated(MlModel::GoogleNet, seed, 90)];
    let catalog = Catalog::table_ii();
    let cfg = SimConfig::with_seed(seed);
    let mut s = PaldiaScheduler::new();
    if traced {
        let mut sink = RingSink::new(1_000_000);
        let r = run_simulation_traced(
            &workloads,
            &mut s,
            InstanceKind::C6i_2xlarge,
            catalog,
            &cfg,
            &mut sink,
        );
        (sink.into_events(), r)
    } else {
        let r = run_simulation(&workloads, &mut s, InstanceKind::C6i_2xlarge, catalog, &cfg);
        (Vec::new(), r)
    }
}

fn fleet_deployments(seed: u64) -> Vec<FleetDeployment> {
    [(MlModel::GoogleNet, 0u64), (MlModel::SeNet18, 1u64)]
        .iter()
        .map(|&(model, off)| FleetDeployment {
            name: format!("{model}"),
            workloads: vec![azure_workload_truncated(model, seed + off, 90)],
            scheduler: Box::new(PaldiaScheduler::new()),
            initial_hw: InstanceKind::C6i_2xlarge,
        })
        .collect()
}

#[test]
fn traced_single_tenant_run_is_bit_identical() {
    for seed in [1_000u64, 4_242] {
        let (events, traced) = capture_single(seed, true);
        let (_, untraced) = capture_single(seed, false);
        assert_eq!(
            fingerprint(&traced),
            fingerprint(&untraced),
            "seed {seed}: tracing perturbed the simulation"
        );
        assert!(!events.is_empty());
    }
}

#[test]
fn traced_fleet_run_is_bit_identical() {
    let seed = 1_000u64;
    let cfg = SimConfig::with_seed(seed);
    let catalog = Catalog::table_ii();
    let mut sink = RingSink::new(1_000_000);
    let traced = run_fleet_traced(fleet_deployments(seed), catalog.clone(), 1, &cfg, &mut sink);
    let untraced = run_fleet(fleet_deployments(seed), catalog, 1, &cfg);
    assert_eq!(traced.len(), untraced.len());
    for (t, u) in traced.iter().zip(&untraced) {
        assert_eq!(
            fingerprint(t),
            fingerprint(u),
            "fleet tracing perturbed tenant {}",
            t.scheme
        );
    }
    // Tenant scoping: both tenants (scopes 1 and 2) emit events.
    let events = sink.into_events();
    assert!(events.iter().any(|e| e.scope == 1));
    assert!(events.iter().any(|e| e.scope == 2));
}

#[test]
fn chrome_export_has_the_documented_shape() {
    let (events, _) = capture_single(1_000, true);
    let json = chrome_trace_json(&events);
    // Container shape.
    assert!(json.starts_with("{\"traceEvents\":["));
    assert!(json.trim_end().ends_with("]}"));
    assert_eq!(
        json.matches('{').count(),
        json.matches('}').count(),
        "unbalanced braces"
    );
    assert_eq!(json.matches('[').count(), json.matches(']').count());
    // Required phases: metadata, complete spans, async request arrows,
    // instants.
    for ph in [
        "\"ph\":\"M\"",
        "\"ph\":\"X\"",
        "\"ph\":\"b\"",
        "\"ph\":\"e\"",
        "\"ph\":\"i\"",
    ] {
        assert!(json.contains(ph), "missing {ph}");
    }
    // Required fields on every event line.
    for field in ["\"ts\":", "\"pid\":", "\"tid\":", "\"dur\":", "\"name\":"] {
        assert!(json.contains(field), "missing {field}");
    }
    // No NaN/Infinity bare tokens (they would break JSON.parse).
    for bad in ["NaN,", "Infinity,", ":NaN", ":Infinity", ":-Infinity"] {
        assert!(!json.contains(bad), "bare non-finite token {bad}");
    }
    // Export is a pure function of the events.
    assert_eq!(json, chrome_trace_json(&events));
}

#[test]
fn explain_renders_a_request_lifecycle() {
    let (events, result) = capture_single(1_000, true);
    let ids = completed_request_ids(&events);
    assert!(!ids.is_empty());
    assert!(ids.len() <= result.completed.len());
    let text = explain_request(&events, ids[ids.len() / 2]).expect("known id must render");
    for needle in [
        "arrived",
        "formed",
        "admitted",
        "completed",
        "end-to-end latency",
    ] {
        assert!(
            text.contains(needle),
            "explain output missing '{needle}':\n{text}"
        );
    }
    // Unknown requests render nothing.
    assert!(explain_request(&events, u64::MAX).is_none());
}

#[test]
fn decision_log_is_captured_when_traced() {
    let (events, _) = capture_single(1_000, true);
    let decisions: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.kind {
            TraceEventKind::Decision(d) => Some(d),
            _ => None,
        })
        .collect();
    assert!(!decisions.is_empty(), "traced run recorded no decisions");
    for d in &decisions {
        assert_eq!(d.scheduler, "Paldia");
        assert!(!d.candidates.is_empty());
    }
}

#[test]
fn ring_sink_stays_bounded() {
    let workloads = vec![azure_workload_truncated(MlModel::GoogleNet, 1_000, 90)];
    let cfg = SimConfig::with_seed(1_000);
    let mut s = PaldiaScheduler::new();
    let mut sink = RingSink::new(64);
    let _ = run_simulation_traced(
        &workloads,
        &mut s,
        InstanceKind::C6i_2xlarge,
        Catalog::table_ii(),
        &cfg,
        &mut sink,
    );
    assert!(sink.len() <= 64);
    assert!(sink.dropped() > 0, "a 64-slot ring must have evicted");
    // The survivors are the newest events, still ordered.
    let events = sink.into_events();
    assert!(events
        .windows(2)
        .all(|w| (w[0].at, w[0].seq) < (w[1].at, w[1].seq)));
}
