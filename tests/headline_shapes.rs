//! Cross-crate integration tests: the headline shapes of the paper's
//! evaluation (DESIGN.md §3) must hold end-to-end through the public
//! facade, on shortened traces suitable for `cargo test`.

use paldia::baselines::Variant;
use paldia::cluster::{FailoverPolicyKind, FaultPlan, SimConfig};
use paldia::experiments::{common, scenarios, SchemeKind};
use paldia::hw::{Catalog, InstanceKind};
use paldia::metrics::FaultImpact;
use paldia::sim::SimTime;
use paldia::workloads::{sebs::SebsMix, MlModel};

/// The first-surge slice of the Azure trace (covers baseline + surge +
/// recovery) — enough to expose every scheme's character.
fn surge_slice(model: MlModel) -> Vec<paldia::cluster::WorkloadSpec> {
    vec![scenarios::azure_workload_truncated(model, 1_000, 420)]
}

fn slo(scheme: &SchemeKind, w: &[paldia::cluster::WorkloadSpec]) -> (f64, f64) {
    let cfg = SimConfig::with_seed(1_000);
    let r = common::run_once(scheme, w, &Catalog::table_ii(), &cfg);
    (r.slo_compliance(cfg.slo_ms), r.total_cost())
}

#[test]
fn paldia_beats_dollar_baselines_and_tracks_p_schemes() {
    // Shape 1 (Fig. 3): on a surge-heavy slice of a heavy model, Paldia
    // clears the cost-effective baselines by percentage points and stays
    // within a couple of points of the always-V100 schemes.
    let w = surge_slice(MlModel::Vgg19);
    let (paldia, _) = slo(&SchemeKind::Paldia, &w);
    let (molecule, _) = slo(&SchemeKind::Molecule(Variant::CostEffective), &w);
    let (infless, _) = slo(&SchemeKind::InflessLlama(Variant::CostEffective), &w);
    let (p_scheme, _) = slo(&SchemeKind::InflessLlama(Variant::Performance), &w);
    assert!(
        paldia > molecule && paldia > infless,
        "Paldia {paldia:.4} vs Molecule($) {molecule:.4} / INFless($) {infless:.4}"
    );
    assert!(
        p_scheme - paldia < 0.05,
        "Paldia {paldia:.4} should track (P) {p_scheme:.4}"
    );
}

#[test]
fn paldia_cost_near_dollar_far_below_p() {
    // Shape 2 (Fig. 5): Paldia's spend is in the $-baseline neighbourhood
    // and a small fraction of the (P) schemes'.
    let w = surge_slice(MlModel::Dpn92);
    let (_, paldia) = slo(&SchemeKind::Paldia, &w);
    let (_, dollar) = slo(&SchemeKind::InflessLlama(Variant::CostEffective), &w);
    let (_, perf) = slo(&SchemeKind::InflessLlama(Variant::Performance), &w);
    assert!(paldia < 0.5 * perf, "Paldia ${paldia:.4} vs (P) ${perf:.4}");
    assert!(
        paldia < 2.5 * dollar,
        "Paldia ${paldia:.4} vs ($) ${dollar:.4}"
    );
}

#[test]
fn tail_characters_differ_by_mechanism() {
    // Shape 3 (Fig. 4): the time-sharing baseline's tail is queue-built;
    // the MPS baseline accumulates interference that time sharing, by
    // construction, cannot.
    let w = surge_slice(MlModel::ResNet50);
    let cfg = SimConfig::with_seed(1_000);
    let molecule = common::run_once(
        &SchemeKind::Molecule(Variant::CostEffective),
        &w,
        &Catalog::table_ii(),
        &cfg,
    );
    let infless = common::run_once(
        &SchemeKind::InflessLlama(Variant::CostEffective),
        &w,
        &Catalog::table_ii(),
        &cfg,
    );
    let mean_interf = |r: &paldia::cluster::RunResult| {
        r.completed.iter().map(|c| c.interference_ms()).sum::<f64>() / r.completed.len() as f64
    };
    assert!(
        mean_interf(&infless) > 3.0 * mean_interf(&molecule).max(0.01),
        "INFless {:.2} ms vs Molecule {:.2} ms",
        mean_interf(&infless),
        mean_interf(&molecule)
    );
}

#[test]
fn exhaustion_ordering_hybrid_ts_mps() {
    // Shape 5 (Fig. 13a): under exhaustion on the V100-only catalog,
    // Paldia ≫ time sharing > MPS-all.
    let v100 = Catalog::of(&[InstanceKind::P3_2xlarge]);
    let w = vec![scenarios::bursty_workload(
        MlModel::GoogleNet,
        900.0,
        4_000.0,
        300,
        2,
        300,
    )];
    let cfg = SimConfig::with_seed(1_000);
    let run = |s: &SchemeKind| common::run_once(s, &w, &v100, &cfg).slo_compliance(cfg.slo_ms);
    let paldia = run(&SchemeKind::Paldia);
    let ts = run(&SchemeKind::Molecule(Variant::Performance));
    let mps = run(&SchemeKind::InflessLlama(Variant::Performance));
    assert!(
        paldia > ts + 0.1 && ts > mps + 0.1,
        "paldia {paldia:.3} > ts {ts:.3} > mps {mps:.3} expected"
    );
    assert!(paldia > 0.9, "paldia under exhaustion: {paldia:.3}");
}

#[test]
fn node_failures_upgrade_the_cost_schemes() {
    // Shape 6 (Fig. 13b): with the failover-upgrade rule, a failure pushes
    // the workload onto the V100 quickly and most traffic still completes.
    let mut cfg = SimConfig::with_seed(1_000).with_minute_failures(SimTime::from_secs(60), 2);
    cfg.seed = 1_000;
    let w = surge_slice(MlModel::DenseNet121);
    let r = common::run_once(&SchemeKind::Paldia, &w, &Catalog::table_ii(), &cfg);
    // The rule is "cheapest *more performant*": failing a CPU node lands on
    // a GPU node (failing the M60 would land on the V100).
    let gpu_hours: f64 = InstanceKind::GPUS.iter().map(|&k| r.cost.hours_on(k)).sum();
    assert!(
        gpu_hours > 0.0,
        "failover should have provisioned a GPU node: {}",
        r.cost
    );
    let total = r.completed.len() as u64 + r.unserved;
    assert!(
        r.unserved < total / 10,
        "unserved {} of {total}",
        r.unserved
    );
}

#[test]
fn fig13b_shapes_survive_the_fault_layer() {
    // Shape 6, golden form (Fig. 13b on the declarative fault layer): under
    // minute-crash windows with the paper's failover rule, the (P) scheme
    // loses ground vs its clean run (forced off the V100), the
    // cost-effective schemes hold or improve (crashes push them onto
    // brawnier hardware), and Paldia stays best-or-equal among the
    // cost-effective schemes while far cheaper than (P).
    let w = surge_slice(MlModel::DenseNet121);
    let clean = SimConfig::with_seed(1_000);
    let plan = FaultPlan::minute_crashes(SimTime::from_secs(60), 2);
    let faulted = clean
        .clone()
        .with_faults(plan.clone(), FailoverPolicyKind::CheapestMorePerformant);
    let catalog = Catalog::table_ii();
    let run = |s: &SchemeKind, cfg: &SimConfig| common::run_once(s, &w, &catalog, cfg);

    let p = SchemeKind::InflessLlama(Variant::Performance);
    let dollar = SchemeKind::InflessLlama(Variant::CostEffective);
    let p_clean = run(&p, &clean).slo_compliance(clean.slo_ms);
    let p_fail = run(&p, &faulted);
    let d_clean = run(&dollar, &clean).slo_compliance(clean.slo_ms);
    let d_fail = run(&dollar, &faulted);
    let paldia_fail = run(&SchemeKind::Paldia, &faulted);

    let p_slo = p_fail.slo_compliance(faulted.slo_ms);
    let d_slo = d_fail.slo_compliance(faulted.slo_ms);
    let paldia_slo = paldia_fail.slo_compliance(faulted.slo_ms);
    assert!(
        p_slo < p_clean,
        "(P) should degrade under failures: {p_slo:.4} vs clean {p_clean:.4}"
    );
    assert!(
        d_slo > d_clean - 0.01,
        "($) should hold or improve under failures: {d_slo:.4} vs clean {d_clean:.4}"
    );
    assert!(
        paldia_slo >= d_slo,
        "Paldia {paldia_slo:.4} should lead ($) {d_slo:.4} under failures"
    );
    assert!(
        paldia_fail.total_cost() < 0.6 * p_fail.total_cost(),
        "Paldia ${:.4} should stay far below (P) ${:.4}",
        paldia_fail.total_cost(),
        p_fail.total_cost()
    );

    // The fault-impact counters see both crash windows and a finite
    // recovery: service resumes within the SLO after each crash.
    let impact = FaultImpact::from_run(&paldia_fail, &plan, faulted.slo_ms);
    assert_eq!(impact.crashes, 2, "both minute-crash windows in horizon");
    assert!(
        impact.mean_recovery_s.is_finite() && impact.mean_recovery_s >= 0.0,
        "Paldia should recover SLO-compliant service after each crash: {:?}",
        impact
    );
    assert!(
        impact.completed_in_fault > 0,
        "requests arriving mid-crash must still be served"
    );
}

#[test]
fn oracle_at_least_as_good_and_no_pricier() {
    // Shape 7 (Fig. 11).
    let w = surge_slice(MlModel::GoogleNet);
    let (paldia_slo, paldia_cost) = slo(&SchemeKind::Paldia, &w);
    let (oracle_slo, oracle_cost) = slo(&SchemeKind::Oracle, &w);
    assert!(
        oracle_slo + 0.005 >= paldia_slo,
        "oracle {oracle_slo:.4} vs paldia {paldia_slo:.4}"
    );
    assert!(
        oracle_slo - paldia_slo < 0.05,
        "paldia should be close behind the oracle"
    );
    assert!(
        paldia_cost < 1.5 * oracle_cost,
        "paldia ${paldia_cost:.4} vs oracle ${oracle_cost:.4}"
    );
}

#[test]
fn sebs_colocation_hurts_cost_schemes_not_p() {
    // Table III.
    let w = surge_slice(MlModel::ResNet50);
    let clean = SimConfig::with_seed(1_000);
    let mut mixed = SimConfig::with_seed(1_000);
    mixed.sebs_mix = SebsMix::table_iii();
    let catalog = Catalog::table_ii();
    let run = |s: &SchemeKind, cfg: &SimConfig| {
        common::run_once(s, &w, &catalog, cfg).slo_compliance(cfg.slo_ms)
    };
    let dollar = SchemeKind::Molecule(Variant::CostEffective);
    let p = SchemeKind::InflessLlama(Variant::Performance);
    assert!(run(&dollar, &mixed) < run(&dollar, &clean));
    assert!(run(&p, &clean) - run(&p, &mixed) < 0.01);
}

#[test]
fn deterministic_through_the_facade() {
    let w = surge_slice(MlModel::SeNet18);
    let a = slo(&SchemeKind::Paldia, &w);
    let b = slo(&SchemeKind::Paldia, &w);
    assert_eq!(a, b);
}

#[test]
fn llm_continuous_batching_beats_request_level_token_tail() {
    // Shape (Orca/vLLM, the `repro --llm` study): under the cold-start
    // storm, iteration-level execution retires each sequence the moment
    // its last token decodes, so P99 *token* latency drops below the
    // request-level batcher's run-to-completion tail — while retiring at
    // least as many requests (per-token retirement frees capacity, it
    // never strands it).
    use paldia::experiments::llm_iter::{p99_token_latency_ms, run_llm, LlmRunOpts};
    let base = LlmRunOpts {
        seed: 1_000,
        secs: 180,
        scheme: SchemeKind::Paldia,
        iterative: true,
        storm: true,
        shards: 1,
    };
    let iterative = run_llm(&base);
    let request_level = run_llm(&LlmRunOpts {
        iterative: false,
        ..base
    });
    let p99_iter = p99_token_latency_ms(&iterative, 1_000);
    let p99_rl = p99_token_latency_ms(&request_level, 1_000);
    assert!(
        p99_iter < p99_rl,
        "continuous batching P99 token latency {p99_iter:.2} ms should beat \
         request-level {p99_rl:.2} ms under the storm"
    );
    assert!(
        iterative.completed.len() >= request_level.completed.len(),
        "continuous batching lost goodput: {} vs {} completed",
        iterative.completed.len(),
        request_level.completed.len()
    );
    assert!(
        !iterative.completed.is_empty(),
        "storm scenario served nothing"
    );
}
