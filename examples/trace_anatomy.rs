//! The anatomy of a traced run: capture the observability stream of a
//! short Paldia simulation, walk one request's lifecycle, read the
//! scheduler's decision log, and export a chrome://tracing file.
//!
//! ```text
//! cargo run --release --example trace_anatomy
//! ```

use paldia::cluster::{run_simulation_traced, SimConfig, WorkloadSpec};
use paldia::core::PaldiaScheduler;
use paldia::hw::{Catalog, InstanceKind};
use paldia::obs::{
    chrome_trace_json, completed_request_ids, explain_request, RingSink, TraceEventKind,
};
use paldia::traces::azure::azure_trace;
use paldia::workloads::{MlModel, Profile};

fn main() {
    // 1. A short primary-setting run: GoogleNet under the first two
    //    minutes of the scaled Azure trace.
    let model = MlModel::GoogleNet;
    let trace = azure_trace(1_000)
        .scale_to_peak(Profile::peak_rps(model))
        .slice(
            paldia::sim::SimTime::ZERO,
            paldia::sim::SimTime::from_secs(120),
        );
    let workload = WorkloadSpec::new(model, trace);

    // 2. Same harness call as an untraced run, plus a bounded in-memory
    //    sink. Metrics are bit-identical with or without it.
    let mut sink = RingSink::new(100_000);
    let mut scheduler = PaldiaScheduler::new();
    let cfg = SimConfig::with_seed(1_000);
    let result = run_simulation_traced(
        &[workload],
        &mut scheduler,
        InstanceKind::C6i_2xlarge,
        Catalog::table_ii(),
        &cfg,
        &mut sink,
    );
    let dropped = sink.dropped();
    let events = sink.into_events();
    println!(
        "traced run: {} requests served, {} events captured ({dropped} dropped)",
        result.completed.len(),
        events.len()
    );

    // 3. One request's lifecycle, arrival to completion.
    let ids = completed_request_ids(&events);
    let mid = ids[ids.len() / 2];
    if let Some(text) = explain_request(&events, mid) {
        println!("\n{text}");
    }

    // 4. The scheduler's decision log: every monitor tick records the
    //    cost-ascending candidate table (Eq. (1) T_max per kind, price,
    //    feasibility) behind the hardware choice.
    let decisions: Vec<_> = events
        .iter()
        .filter_map(|e| match &e.kind {
            TraceEventKind::Decision(d) => Some((e.at, d)),
            _ => None,
        })
        .collect();
    println!("decision log: {} entries", decisions.len());
    if let Some((at, d)) = decisions
        .iter()
        .find(|(_, d)| d.chosen_hw != d.current_hw)
        .or(decisions.last())
    {
        println!(
            "\nat {:.1}s — {} on {}, chose {} (slo {} ms, distress={}, ramping={}):",
            at.as_millis_f64() / 1_000.0,
            d.scheduler,
            d.current_hw,
            d.chosen_hw,
            d.slo_ms,
            d.distress,
            d.ramping
        );
        for c in &d.candidates {
            println!(
                "  {:<14} T_max {:>9.2} ms  ${:.3}/h  {}",
                c.kind.to_string(),
                c.t_max_ms,
                c.price_per_hour,
                if c.feasible { "feasible" } else { "-" }
            );
        }
    }

    // 5. Export for chrome://tracing (or Perfetto). Worker lanes show
    //    batch execution spans; the gateway lane shows per-request
    //    async arrows; instants mark decisions and hardware switches.
    let json = chrome_trace_json(&events);
    let path = std::env::temp_dir().join("paldia_trace_anatomy.json");
    match std::fs::write(&path, &json) {
        Ok(()) => println!(
            "\nchrome trace ({} bytes) written to {}",
            json.len(),
            path.display()
        ),
        Err(e) => eprintln!("\ncould not write {}: {e}", path.display()),
    }
}
