//! Domain scenario 3: writing your own scheduling policy.
//!
//! The cluster substrate is policy-agnostic: anything implementing
//! [`Scheduler`] can be evaluated under identical conditions. This example
//! builds a naive "static two-tier" policy (CPU below a fixed rate, M60
//! above, plain MPS) and shows how far behind Paldia's modeled hybrid
//! scheduling it lands under surges.
//!
//! ```text
//! cargo run --release --example custom_policy
//! ```

use paldia::cluster::{run_simulation, Decision, ModelDecision, Observation, Scheduler, SimConfig};
use paldia::core::PaldiaScheduler;
use paldia::experiments::scenarios;
use paldia::hw::{Catalog, InstanceKind};
use paldia::workloads::{MlModel, Profile};

/// A deliberately simple policy: fixed rate threshold, fixed hardware pair,
/// unbounded MPS. No prediction, no Eq. (1), no occupancy management.
struct StaticTwoTier {
    threshold_rps: f64,
}

impl Scheduler for StaticTwoTier {
    fn name(&self) -> &str {
        "StaticTwoTier"
    }

    fn decide(&mut self, obs: &Observation) -> Decision {
        let rate: f64 = obs.models.iter().map(|m| m.observed_rps).sum();
        let hw = if rate < self.threshold_rps {
            InstanceKind::C6i_2xlarge
        } else {
            InstanceKind::G3s_xlarge
        };
        Decision {
            hw,
            total_cap: None,
            per_model: obs
                .models
                .iter()
                .map(|m| {
                    (
                        m.model,
                        ModelDecision {
                            batch_size: Profile::default_batch(m.model),
                            spatial_cap: u32::MAX,
                        },
                    )
                })
                .collect(),
        }
    }
}

fn main() {
    let model = MlModel::GoogleNet;
    let workloads = vec![scenarios::azure_workload(model, 3)];
    let catalog = Catalog::table_ii();
    let cfg = SimConfig::with_seed(3);

    let mut custom = StaticTwoTier {
        threshold_rps: 25.0,
    };
    let custom_run = run_simulation(
        &workloads,
        &mut custom,
        InstanceKind::C6i_2xlarge,
        catalog.clone(),
        &cfg,
    );

    let mut paldia = PaldiaScheduler::new();
    let paldia_run = run_simulation(
        &workloads,
        &mut paldia,
        InstanceKind::C6i_2xlarge,
        catalog,
        &cfg,
    );

    println!("{model} under the Azure trace:\n");
    for r in [&custom_run, &paldia_run] {
        println!(
            "  {:14}  SLO {:6.2}%   cost ${:.4}   transitions {:3}",
            r.scheme,
            r.slo_compliance(cfg.slo_ms) * 100.0,
            r.total_cost(),
            r.transitions
        );
    }
    println!(
        "\nThe static policy reacts only to the observed rate, pays every surge with a\n\
         full procurement delay of queued requests, and lets MPS consolidation smear\n\
         execution under backlogs. Paldia's prediction + Eq. (1) occupancy planning is\n\
         the difference between those compliance numbers."
    );
}
