//! Domain scenario 1: an image-classification service under bursty traffic.
//!
//! Plays all five evaluated schemes (the paper's Fig. 3/5 roster) against a
//! chosen vision model and prints the compliance/cost/power trade-off each
//! scheme lands on.
//!
//! ```text
//! cargo run --release --example vision_scheme_shootout [model-index 0..11]
//! ```

use paldia::cluster::SimConfig;
use paldia::experiments::{common, scenarios, SchemeKind};
use paldia::hw::Catalog;
use paldia::metrics::{LatencyStats, TextTable};
use paldia::workloads::MlModel;

fn main() {
    let idx: usize = std::env::args()
        .nth(1)
        .and_then(|a| a.parse().ok())
        .unwrap_or(0);
    let model = MlModel::VISION[idx.min(MlModel::VISION.len() - 1)];
    println!("scheme shoot-out: {model} under the Azure serverless trace\n");

    let catalog = Catalog::table_ii();
    let cfg = SimConfig::with_seed(7);
    let workloads = vec![scenarios::azure_workload(model, 7)];

    let mut table = TextTable::new(&[
        "scheme",
        "SLO",
        "P99 ms",
        "cost $",
        "power W",
        "transitions",
        "cold starts",
    ]);
    for scheme in SchemeKind::primary_roster() {
        let r = common::run_once(&scheme, &workloads, &catalog, &cfg);
        let stats = LatencyStats::from_completed(&r.completed);
        table.row(&[
            r.scheme.clone(),
            format!("{:.2}%", r.slo_compliance(cfg.slo_ms) * 100.0),
            format!("{:.0}", stats.p99),
            format!("{:.4}", r.total_cost()),
            format!("{:.0}", r.mean_power_w()),
            r.transitions.to_string(),
            r.cold_starts.to_string(),
        ]);
    }
    println!("{}", table.render());
    println!(
        "Expected shape (paper Figs. 3–5): the (P) schemes buy ~100% compliance with the\n\
         always-on V100; the ($) schemes are cheap but leak SLOs during surges; Paldia\n\
         matches the (P) compliance to within ~1–2 pp at a fraction of their cost."
    );
}
