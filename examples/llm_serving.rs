//! Domain scenario 2: serving large language models (the paper's §VI-B
//! sensitivity study).
//!
//! Language models are far heavier than vision models in execution time,
//! memory footprint and bandwidth demand — every cost-aware scheme is forced
//! onto pricier hardware, and the question becomes how gracefully each one
//! pays. Prints per-model compliance and cost for Paldia vs the baselines,
//! plus Paldia's hardware timeline for one model.
//!
//! ```text
//! cargo run --release --example llm_serving
//! ```

use paldia::cluster::SimConfig;
use paldia::experiments::{common, scenarios, SchemeKind};
use paldia::hw::Catalog;
use paldia::metrics::TextTable;
use paldia::workloads::MlModel;

fn main() {
    let catalog = Catalog::table_ii();
    let cfg = SimConfig::with_seed(11);

    let mut table = TextTable::new(&["model", "scheme", "SLO", "cost $"]);
    for &model in &MlModel::LANGUAGE {
        let workloads = vec![scenarios::azure_workload(model, 11)];
        for scheme in [
            SchemeKind::InflessLlama(paldia::baselines::Variant::Performance),
            SchemeKind::InflessLlama(paldia::baselines::Variant::CostEffective),
            SchemeKind::Paldia,
        ] {
            let r = common::run_once(&scheme, &workloads, &catalog, &cfg);
            table.row(&[
                model.name().to_string(),
                r.scheme.clone(),
                format!("{:.2}%", r.slo_compliance(cfg.slo_ms) * 100.0),
                format!("{:.4}", r.total_cost()),
            ]);
        }
    }
    println!("{}", table.render());

    // Paldia's hardware timeline for BERT: watch it ride cheap GPUs and
    // borrow the V100 only when the peak demands it.
    let workloads = vec![scenarios::azure_workload(MlModel::Bert, 11)];
    let r = common::run_once(&SchemeKind::Paldia, &workloads, &catalog, &cfg);
    let mut nodes = r.nodes.clone();
    nodes.sort_by(|a, b| a.lease_start_s.total_cmp(&b.lease_start_s));
    println!("Paldia hardware timeline for BERT (lease start → duration):");
    for n in nodes.iter().take(20) {
        println!(
            "  t={:7.1}s  {:12}  {:6.1}s  util {:.0}%",
            n.lease_start_s,
            n.kind.aws_name(),
            n.lease_s,
            n.utilization() * 100.0
        );
    }
    if nodes.len() > 20 {
        println!("  … {} more leases", nodes.len() - 20);
    }
}
