//! Quickstart: serve one ML inference workload with Paldia and read the
//! numbers the paper cares about.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use paldia::baselines::{InflessLlama, Variant};
use paldia::cluster::{run_simulation, SimConfig, WorkloadSpec};
use paldia::core::PaldiaScheduler;
use paldia::hw::{Catalog, InstanceKind};
use paldia::metrics::{LatencyStats, TailBreakdown};
use paldia::traces::azure::azure_trace;
use paldia::workloads::{MlModel, Profile};

fn main() {
    // 1. A workload: ResNet-50 under the bursty Azure serverless trace,
    //    scaled to the paper's peak rate for this model class (450 rps).
    let model = MlModel::ResNet50;
    let trace = azure_trace(42).scale_to_peak(Profile::peak_rps(model));
    let workload = WorkloadSpec::new(model, trace);
    println!(
        "workload: {model}, peak {:.0} rps, mean {:.1} rps, {:.0}s trace",
        workload.trace.peak(),
        workload.trace.mean(),
        workload.trace.duration().as_secs_f64()
    );

    // 2. The cluster: the paper's Table II hardware menu, default timing
    //    constants (200 ms SLO, ~4 s hardware procurement, 10 min keep-alive).
    let catalog = Catalog::table_ii();
    let cfg = SimConfig::with_seed(42);

    // 3. Serve it with Paldia, starting warm on a cheap CPU node.
    let mut paldia = PaldiaScheduler::new();
    let result = run_simulation(
        std::slice::from_ref(&workload),
        &mut paldia,
        InstanceKind::C6i_2xlarge,
        catalog.clone(),
        &cfg,
    );

    let stats = LatencyStats::from_completed(&result.completed);
    println!("\n== Paldia ==");
    println!(
        "  SLO compliance : {:.2}%",
        result.slo_compliance(cfg.slo_ms) * 100.0
    );
    println!("  P50 / P99      : {:.0} / {:.0} ms", stats.p50, stats.p99);
    println!("  cost           : ${:.4}", result.total_cost());
    println!("  mean power     : {:.0} W", result.mean_power_w());
    println!("  transitions    : {}", result.transitions);
    if let Some(b) = TailBreakdown::at(&result.completed, 99.0) {
        println!(
            "  P99 breakdown  : {:.0} ms = {:.0} min + {:.0} queue + {:.0} interference",
            b.total_ms, b.min_possible_ms, b.queueing_ms, b.interference_ms
        );
    }

    // 4. Compare against a state-of-the-art baseline on the same workload.
    let mut baseline = InflessLlama::new(Variant::CostEffective);
    let base = run_simulation(
        &[workload],
        &mut baseline,
        InstanceKind::C6i_2xlarge,
        catalog,
        &cfg,
    );
    println!("\n== {} ==", base.scheme);
    println!(
        "  SLO compliance : {:.2}%",
        base.slo_compliance(cfg.slo_ms) * 100.0
    );
    println!("  cost           : ${:.4}", base.total_cost());

    println!(
        "\nPaldia serves {:+.2} pp more requests within the SLO at {:+.0}% cost.",
        (result.slo_compliance(cfg.slo_ms) - base.slo_compliance(cfg.slo_ms)) * 100.0,
        (result.total_cost() / base.total_cost() - 1.0) * 100.0
    );
}
