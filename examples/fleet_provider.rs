//! Domain scenario 5: the provider's view — many functions, six nodes.
//!
//! Four Paldia tenants serve different models over the physical Table II
//! cluster (exactly one unit of each node kind). Surges are staggered, so
//! tenants mostly dodge each other — but when two want the same GPU, the
//! loser pays with pricier hardware. Compare against an elastic inventory
//! to see what the physical constraint costs each tenant.
//!
//! ```text
//! cargo run --release --example fleet_provider
//! ```

use paldia::cluster::{run_fleet, FleetDeployment, SimConfig, WorkloadSpec};
use paldia::core::PaldiaScheduler;
use paldia::experiments::scenarios;
use paldia::hw::{Catalog, InstanceKind};
use paldia::metrics::TextTable;
use paldia::workloads::MlModel;

fn tenants(seed: u64) -> Vec<FleetDeployment> {
    let models = [
        MlModel::GoogleNet,
        MlModel::Dpn92,
        MlModel::ResNet50,
        MlModel::SeNet18,
    ];
    models
        .iter()
        .enumerate()
        .map(|(i, &model)| {
            let w = scenarios::azure_workload(model, seed + i as u64);
            FleetDeployment {
                name: model.name().to_string(),
                workloads: vec![WorkloadSpec::new(model, w.trace.rotate(i * 150))],
                scheduler: Box::new(PaldiaScheduler::new()),
                initial_hw: InstanceKind::C6i_2xlarge,
            }
        })
        .collect()
}

fn main() {
    let cfg = SimConfig::with_seed(21);

    println!("four Paldia tenants, one unit of each Table II node:\n");
    let constrained = run_fleet(tenants(21), Catalog::table_ii(), 1, &cfg);
    let elastic = run_fleet(tenants(21), Catalog::table_ii(), u32::MAX, &cfg);

    let mut table = TextTable::new(&[
        "tenant",
        "SLO (physical)",
        "SLO (elastic)",
        "$ (physical)",
        "$ (elastic)",
    ]);
    for (c, e) in constrained.iter().zip(elastic.iter()) {
        table.row(&[
            c.scheme.clone(),
            format!("{:.2}%", c.slo_compliance(cfg.slo_ms) * 100.0),
            format!("{:.2}%", e.slo_compliance(cfg.slo_ms) * 100.0),
            format!("{:.4}", c.total_cost()),
            format!("{:.4}", e.total_cost()),
        ]);
    }
    println!("{}", table.render());

    println!("hardware timelines (physical inventory):");
    for r in &constrained {
        let path: Vec<String> = r
            .hw_timeline
            .iter()
            .map(|(t, k)| format!("{:.0}s:{}", t, k.aws_name()))
            .collect();
        println!("  {:28} {}", r.scheme, path.join(" → "));
    }
}
