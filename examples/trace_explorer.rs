//! Domain scenario 4: characterizing request traces before scheduling them.
//!
//! Prints the scheduling-relevant statistics and surge structure of each
//! built-in trace family, demonstrates CSV round-tripping for bringing your
//! own traces, and sketches each shape as a sparkline.
//!
//! ```text
//! cargo run --release --example trace_explorer
//! ```

use paldia::metrics::TimeSeries;
use paldia::traces::analytics::{busiest_window, stats, surges};
use paldia::traces::azure::azure_trace;
use paldia::traces::twitter::twitter_trace;
use paldia::traces::wiki::wiki_trace;
use paldia::traces::{read_trace, write_trace, RateTrace};

fn describe(name: &str, trace: &RateTrace) {
    let s = stats(trace);
    println!("== {name} ==");
    println!(
        "  mean {:.2}  peak {:.2}  peak:mean {:.1}  cv {:.2}  burst-time {:.1}%  max jump {:.1}x",
        s.mean,
        s.peak,
        s.peak_to_mean,
        s.cv,
        s.burst_time_fraction * 100.0,
        s.max_relative_jump
    );
    let found = surges(trace, 0.5 * s.peak);
    println!("  windows ≥ 50% of peak: {}", found.len());
    for w in found.iter().take(4) {
        println!(
            "    {:>7.0}s → {:>7.0}s  ({:.0}s, peak {:.2})",
            w.start.as_secs_f64(),
            w.end.as_secs_f64(),
            w.duration_s(),
            w.peak
        );
    }
    if let Some((start, mean)) = busiest_window(trace, 60) {
        println!(
            "  busiest 60-bin window starts at {:.0}s (mean {:.2})",
            start.as_secs_f64(),
            mean
        );
    }
    let ts = TimeSeries::new(trace.bin_width().as_secs_f64(), trace.rates().to_vec());
    println!("  shape: {}\n", ts.sparkline(64));
}

fn main() {
    describe("Azure serverless (bursty)", &azure_trace(1));
    describe("Wikipedia (diurnal, compressed)", &wiki_trace(1));
    describe("Twitter (dense, erratic)", &twitter_trace(1));

    // Bring-your-own-trace round trip.
    let custom = azure_trace(1).scale_to_peak(225.0);
    let mut csv = Vec::new();
    write_trace(&custom, &mut csv).expect("in-memory write");
    let reloaded = read_trace(csv.as_slice()).expect("reload");
    assert_eq!(reloaded, custom);
    println!(
        "CSV round-trip: {} bins, {} bytes — drop a `seconds,rps` file in and schedule it.",
        reloaded.num_bins(),
        csv.len()
    );
}
